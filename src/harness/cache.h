// Content-addressed result cache over the checkpoint journal format.
//
// The campaign engine (DESIGN.md §13) deduplicates sweep points across
// many requests: a point is keyed by (spec_hash, point_index), where the
// spec hash is the same FNV-1a digest the checkpoint journal stamps into
// its header — but computed over a cache-specific canonical text that
// ADDITIONALLY includes the sweep values. The journal's own hash excludes
// them (they live in the header record), which is sound for resume because
// resume re-supplies the same values; a cache shared across campaigns
// cannot assume that, and a point's RNG streams are keyed on its *index*
// in the value list, so two sweeps with different value lists must never
// collide. cache_spec_text is the one canonicalizer; tests/harness/
// test_cache_key.cpp pins its digests so accidental drift (which would
// silently invalidate every cache on disk) fails loudly.
//
// On-disk representation: one journal file per spec at
// <dir>/<hash16>.tgij — the exact header+point record format of
// harness/checkpoint.h (DESIGN.md §11), published atomically via
// util::AtomicFile (the cache, unlike the mid-sweep journal, is only ever
// written whole). Reads inherit the journal trust policy: a record is
// fully valid or it is quarantined with a reason and its point recomputed;
// a shard whose header disagrees with the hash in its own filename is
// foreign or tampered and is quarantined wholesale. lookup() never throws
// on damaged bytes — damage is data, not an error.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "harness/checkpoint.h"
#include "harness/faults.h"
#include "harness/suite.h"
#include "sim/machine.h"

namespace tgi::harness {

/// The canonical spec text whose journal_spec_hash() keys the result
/// cache. Layout mirrors tgi_sweep's checkpoint spec text (meter, seed,
/// suite roster, fault plane + recovery policy, cluster config) plus the
/// `sweep=` value list — everything that determines a point's bytes,
/// including its position-keyed RNG streams. `faults` may be null
/// (fault-free sweep); `stuck_run_limit` is only recorded alongside
/// faults, matching the journal spec.
[[nodiscard]] std::string cache_spec_text(
    const sim::ClusterSpec& cluster, std::uint64_t seed, bool exact_meter,
    const SuiteConfig& suite, const FaultSpec* faults,
    std::size_t stuck_run_limit, const std::vector<std::size_t>& values);

/// One lookup's outcome: the valid completed points (first valid record
/// per index wins, exactly like journal resume) and every quarantined
/// record with its reason. Damage has already been logged at WARN.
struct CacheLookup {
  std::map<std::size_t, PointRecord> completed;
  std::vector<JournalDamage> damage;

  [[nodiscard]] bool hit(std::size_t index) const {
    return completed.find(index) != completed.end();
  }
};

/// A persistent, content-addressed store of completed sweep points.
class ResultCache {
 public:
  /// `directory` is created lazily on the first store().
  explicit ResultCache(std::string directory);

  [[nodiscard]] const std::string& directory() const { return directory_; }

  /// Shard file for a spec: <directory>/<hash16>.tgij.
  [[nodiscard]] std::string shard_path(std::uint64_t spec_hash) const;

  /// Reads the spec's shard. A missing shard is an empty (all-miss)
  /// lookup; damaged records — torn, bit-flipped, duplicated, foreign —
  /// are quarantined into `damage` and treated as misses. Never throws on
  /// bad bytes.
  [[nodiscard]] CacheLookup lookup(
      std::uint64_t spec_hash, const std::string& mode,
      const std::vector<std::size_t>& values) const;

  /// Publishes the spec's shard atomically: header + `records` in index
  /// order. `records` may be partial (a campaign cut short by a worker
  /// failure still banks what finished); the next lookup simply misses the
  /// rest. Callers pass the union of prior hits and fresh computes — the
  /// cache itself never merges, so a store is a deterministic function of
  /// its arguments.
  void store(std::uint64_t spec_hash, const std::string& mode,
             const std::vector<std::size_t>& values,
             const std::map<std::size_t, PointRecord>& records) const;

 private:
  std::string directory_;
};

}  // namespace tgi::harness
