#include "harness/robust.h"

#include <cmath>
#include <functional>
#include <sstream>
#include <utility>

#include "util/error.h"

namespace tgi::harness {

void RobustConfig::validate() const {
  TGI_REQUIRE(backoff_base.value() >= 0.0, "backoff_base must be >= 0");
  TGI_REQUIRE(timeout_stall.value() >= 0.0, "timeout_stall must be >= 0");
  TGI_REQUIRE(min_coverage > 0.0 && min_coverage <= 1.0,
              "min_coverage must be in (0, 1]");
  TGI_REQUIRE(max_gap_fraction > 0.0 && max_gap_fraction <= 1.0,
              "max_gap_fraction must be in (0, 1]");
  TGI_REQUIRE(spike_jump_ratio >= 0.0, "spike_jump_ratio must be >= 0");
}

std::string reading_defect(const power::MeterReading& reading,
                           util::Seconds expected_duration,
                           const RobustConfig& config) {
  const auto& samples = reading.trace.samples();
  std::ostringstream why;

  // Coverage: a truncated log spans less of the run than it should.
  if (reading.duration.value() <
      config.min_coverage * expected_duration.value()) {
    why << "trace covers " << reading.duration.value() << " s of a "
        << expected_duration.value() << " s run (min coverage "
        << config.min_coverage << ")";
    return why.str();
  }

  // Gap: a dropout burst leaves a hole no trapezoid should bridge.
  double max_gap = 0.0;
  for (std::size_t i = 1; i < samples.size(); ++i) {
    max_gap = std::max(max_gap,
                       samples[i].t.value() - samples[i - 1].t.value());
  }
  if (max_gap > config.max_gap_fraction * expected_duration.value()) {
    why << "largest sample gap " << max_gap << " s exceeds "
        << config.max_gap_fraction << " of the " << expected_duration.value()
        << " s run";
    return why.str();
  }

  // Spike: a gain-spike window enters and exits with a sharp level jump
  // (the rogue gain is at least 1.5x), so two big interior jumps mark a
  // transient window. The exclusion window is symmetric by contract: of
  // the samples.size() - 1 adjacent-sample intervals, exactly the first
  // and the last are skipped (ramp-in and ramp-out jump legitimately);
  // every interior interval (samples[i-1], samples[i]) for i in
  // [2, size - 2] is examined — including the one whose exit jump lands
  // on the last interior interval.
  if (config.spike_jump_ratio > 1.0 && samples.size() >= 8) {
    std::size_t jumps = 0;
    const std::size_t last_interior = samples.size() - 2;
    for (std::size_t i = 2; i <= last_interior; ++i) {
      const double prev = samples[i - 1].watts.value();
      const double cur = samples[i].watts.value();
      if (prev <= 0.0 || cur <= 0.0) {
        // A powered cluster never draws <= 0 W, so a non-positive
        // interior sample is instrument garbage in its own right. Report
        // it instead of skipping the interval: the old silent `continue`
        // let all-zero and zero-padded traces sail through this check.
        why << "non-positive interior sample ("
            << (cur <= 0.0 ? cur : prev) << " W at sample "
            << (cur <= 0.0 ? i : i - 1) << ")";
        return why.str();
      }
      const double ratio = cur > prev ? cur / prev : prev / cur;
      if (ratio > config.spike_jump_ratio) ++jumps;
    }
    if (jumps >= 2) {
      why << jumps << " interior level jumps exceed ratio "
          << config.spike_jump_ratio << " (gain-spike window)";
      return why.str();
    }
  }

  // Stuck-at: a noisy instrument never repeats a reading bit-exactly for
  // long; a frozen one does.
  if (config.stuck_run_limit > 0) {
    std::size_t run = 1;
    for (std::size_t i = 1; i < samples.size(); ++i) {
      run = samples[i].watts.value() == samples[i - 1].watts.value() ? run + 1
                                                                     : 1;
      if (run > config.stuck_run_limit) {
        why << run << " consecutive identical readings (limit "
            << config.stuck_run_limit << ")";
        return why.str();
      }
    }
  }
  return {};
}

ValidatingMeter::ValidatingMeter(power::PowerMeter& inner, RobustConfig config)
    : inner_(inner), config_(config) {
  config_.validate();
}

power::MeterReading ValidatingMeter::measure(const power::PowerSource& source,
                                             util::Seconds duration) {
  power::MeterReading reading = inner_.measure(source, duration);
  if (config_.validate_readings) {
    const std::string defect = reading_defect(reading, duration, config_);
    if (!defect.empty()) {
      ++rejects_;
      throw ReadingRejected(inner_.name() + ": " + defect);
    }
    if (metrics_ != nullptr) {
      metrics_->add("samples_validated",
                    static_cast<double>(reading.trace.samples().size()));
    }
  }
  return reading;
}

std::string ValidatingMeter::name() const {
  return "Validated(" + inner_.name() + ")";
}

std::size_t robust_measurements_per_point(const SuiteConfig& suite,
                                          const RobustConfig& robust) {
  // Derived from the same roster run_suite executes, so the meter stride
  // cannot drift from the benchmark list when the suite grows a member.
  return suite_benchmarks(suite).size() * (robust.max_retries + 1);
}

RobustSuiteRunner::RobustSuiteRunner(sim::ClusterSpec cluster,
                                     power::PowerMeter& meter, FaultPlan plan,
                                     RobustConfig robust, SuiteConfig suite,
                                     std::size_t point_index)
    : plan_(std::move(plan)),
      robust_(robust),
      suite_(suite),
      point_index_(point_index),
      faulty_(meter, plan_,
              point_index * robust_measurements_per_point(suite, robust)),
      validating_(faulty_, robust),
      runner_(std::move(cluster), validating_, suite) {}

void RobustSuiteRunner::attach_recorder(obs::PointRecorder* recorder) {
  recorder_ = recorder;
  runner_.attach_recorder(recorder);
  validating_.attach_metrics(recorder != nullptr ? &recorder->metrics()
                                                 : nullptr);
}

void RobustSuiteRunner::begin_point(RobustSuitePoint& out,
                                    std::size_t processes) {
  out.point.processes = processes;
  out.point.nodes = runner_.cluster().nodes_for(processes);
  meter_faults_before_ = faulty_.faults_applied();
}

void RobustSuiteRunner::run_member(RobustSuitePoint& out, std::size_t member,
                                   std::size_t processes) {
  // The ONE suite enumeration (suite_benchmarks) drives this member, the
  // plain SuiteRunner::run_suite, and robust_measurements_per_point's
  // meter stride alike.
  const std::vector<std::string> benches = suite_benchmarks(suite_);
  TGI_REQUIRE(member < benches.size(),
              "run_member index " << member << " out of range for a "
                                  << benches.size() << "-member suite");
  {
    const std::size_t b = member;
    bool survived = false;
    core::BenchmarkMeasurement m;
    for (std::size_t attempt = 0; attempt <= robust_.max_retries; ++attempt) {
      // A truncation armed by a previous attempt whose measurement never
      // happened (e.g. the meter threw first) must not leak onto this
      // attempt's reading.
      faulty_.disarm_truncation();
      ++out.counters.attempts;
      if (recorder_ != nullptr) {
        recorder_->set_context(b, attempt);
        recorder_->metrics().add("attempts");
        recorder_->metrics().set_max(
            "attempt_max", static_cast<double>(attempt));
      }
      if (attempt > 0) {
        ++out.counters.retries;
        const util::Seconds backoff =
            robust_.backoff_base *
            std::ldexp(1.0, static_cast<int>(attempt) - 1);
        out.counters.backoff += backoff;
        if (recorder_ != nullptr) {
          recorder_->span("backoff", "recovery", recorder_->now(), backoff);
          recorder_->advance(backoff);
          recorder_->metrics().add("retries");
          recorder_->metrics().add("backoff_seconds", backoff.value());
        }
      }
      const RunFault rf = plan_.run_fault(point_index_, b, attempt);
      if (rf.kind == RunFaultKind::kBenchmarkFailure) {
        ++out.counters.run_faults;
        if (recorder_ != nullptr) {
          recorder_->instant("benchmark-failure", "fault",
                             {{"benchmark", benches[b]}});
          recorder_->metrics().add("run_faults");
        }
        continue;  // died before a measurement existed
      }
      if (rf.kind == RunFaultKind::kTimeout) {
        ++out.counters.run_faults;
        out.counters.stalled += robust_.timeout_stall;
        if (recorder_ != nullptr) {
          recorder_->span("stall", "fault", recorder_->now(),
                          robust_.timeout_stall,
                          {{"benchmark", benches[b]}});
          recorder_->advance(robust_.timeout_stall);
          recorder_->metrics().add("run_faults");
          recorder_->metrics().add("stalled_seconds",
                                   robust_.timeout_stall.value());
        }
        continue;  // watchdog killed it; nothing to measure
      }
      if (rf.kind == RunFaultKind::kTruncatedTrace) {
        ++out.counters.run_faults;
        faulty_.arm_truncation(plan_.spec().truncation_fraction);
        if (recorder_ != nullptr) {
          recorder_->instant("truncated-trace", "fault",
                             {{"benchmark", benches[b]}});
          recorder_->metrics().add("run_faults");
        }
      }
      try {
        m = runner_.run_benchmark(benches[b], processes);
        survived = true;
        break;
      } catch (const ReadingRejected& rejected) {
        ++out.counters.rejected_readings;
        if (recorder_ != nullptr) {
          recorder_->instant("reading-rejected", "fault",
                             {{"why", rejected.what()}});
          recorder_->metrics().add("rejected_readings");
        }
      }
    }
    if (survived) {
      out.point.measurements.push_back(std::move(m));
    } else {
      out.missing.emplace_back(benches[b]);
      ++out.counters.dropped_benchmarks;
      if (recorder_ != nullptr) {
        recorder_->instant("benchmark-dropped", "recovery",
                           {{"benchmark", benches[b]}});
        recorder_->metrics().add("dropped_benchmarks");
      }
    }
  }
}

void RobustSuiteRunner::finish_point(RobustSuitePoint& out) {
  out.counters.meter_faults = faulty_.faults_applied() - meter_faults_before_;
  if (recorder_ != nullptr && out.counters.meter_faults > 0) {
    recorder_->metrics().add(
        "meter_faults", static_cast<double>(out.counters.meter_faults));
  }
}

RobustSuitePoint RobustSuiteRunner::run_suite(std::size_t processes) {
  RobustSuitePoint out;
  begin_point(out, processes);
  const std::size_t members = suite_benchmarks(suite_).size();
  for (std::size_t b = 0; b < members; ++b) {
    run_member(out, b, processes);
  }
  finish_point(out);
  return out;
}

}  // namespace tgi::harness
