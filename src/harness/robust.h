// Measurement robustness: validation, bounded retry, graceful degradation.
//
// harness/faults.h makes the measurement pipeline fail on purpose; this
// module is the policy that absorbs it, mirroring what an operator running
// the paper's procedure on real hardware does by hand: eyeball the power
// log for gaps and garbage, rerun a benchmark that died or stalled, and —
// when a benchmark simply will not complete — publish the suite without
// it, renormalizing the weights over the survivors (core::TgiCalculator::
// compute_partial) and saying so.
//
// Determinism: retries and degradation decisions depend only on the
// FaultPlan (pure functions of seed and indices) and on the readings,
// never on wall-clock time. Backoff is *accounted*, not slept — the
// simulated operator's lost minutes are a reported cost, so fault sweeps
// stay fast and bit-identical at any thread count.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "harness/faults.h"
#include "harness/suite.h"
#include "obs/trace.h"
#include "power/meter.h"
#include "util/error.h"
#include "util/units.h"

namespace tgi::harness {

/// Recovery-policy knobs.
struct RobustConfig {
  /// Retries per benchmark after the first attempt (attempts = 1 + this).
  std::size_t max_retries = 2;
  /// Deterministic exponential backoff: retry r charges base * 2^(r-1) to
  /// the point's backoff account (never slept).
  util::Seconds backoff_base{5.0};
  /// Wall time charged when an attempt stalls until the watchdog kills it.
  util::Seconds timeout_stall{120.0};
  /// Run telemetry checks on every reading (coverage/gap/spike/stuck).
  bool validate_readings = true;
  /// Reject a reading spanning less than this fraction of the run.
  double min_coverage = 0.9;
  /// Reject a reading whose largest inter-sample gap exceeds this fraction
  /// of the run (catches dropout bursts; lone dropouts pass).
  double max_gap_fraction = 0.15;
  /// Reject a reading with two or more *interior* adjacent-sample level
  /// jumps exceeding this ratio — a gain-spike window enters and exits
  /// with jumps of at least the minimum rogue gain (1.5x), while the
  /// simulated suite's legitimate phase transitions stay far gentler.
  /// (A global z-score cannot catch window faults: a 20% window inflates
  /// the stddev it is judged against, while legitimate multi-phase traces
  /// reach 13+ sigma.) Boundary intervals are excluded; values <= 1
  /// disable the check.
  double spike_jump_ratio = 1.4;
  /// Reject a reading with more than this many consecutive bit-identical
  /// samples (catches stuck-at readings on noisy instruments). 0 disables;
  /// keep it off for noiseless meters (ModelMeter's flat phases repeat
  /// values legitimately).
  std::size_t stuck_run_limit = 0;

  void validate() const;
};

/// Thrown by ValidatingMeter when a reading fails a telemetry check.
class ReadingRejected : public util::TgiError {
 public:
  explicit ReadingRejected(const std::string& what) : util::TgiError(what) {}
};

/// The telemetry checks, as a pure function (exposed for tests): returns
/// an empty string when `reading` looks sound for a run of
/// `expected_duration`, else a human-readable defect description.
[[nodiscard]] std::string reading_defect(const power::MeterReading& reading,
                                         util::Seconds expected_duration,
                                         const RobustConfig& config);

/// Decorator that throws ReadingRejected instead of handing a defective
/// reading to the suite runner.
class ValidatingMeter final : public power::PowerMeter {
 public:
  /// `inner` must outlive the decorator.
  ValidatingMeter(power::PowerMeter& inner, RobustConfig config);

  [[nodiscard]] power::MeterReading measure(const power::PowerSource& source,
                                            util::Seconds duration) override;
  [[nodiscard]] std::string name() const override;

  /// Readings rejected so far.
  [[nodiscard]] std::size_t rejects() const { return rejects_; }

  /// Attaches (or detaches, with nullptr) a metric registry: every
  /// validated reading adds its sample count to the "samples_validated"
  /// counter. Observational only; must outlive the meter or be detached.
  void attach_metrics(obs::MetricRegistry* metrics) { metrics_ = metrics; }

 private:
  power::PowerMeter& inner_;
  RobustConfig config_;
  std::size_t rejects_ = 0;
  obs::MetricRegistry* metrics_ = nullptr;
};

/// What one robust suite point went through.
struct PointCounters {
  std::size_t attempts = 0;           ///< benchmark run attempts, total
  std::size_t retries = 0;            ///< attempts beyond the first
  std::size_t run_faults = 0;         ///< injected run-level faults hit
  std::size_t meter_faults = 0;       ///< injected meter faults applied
  std::size_t rejected_readings = 0;  ///< readings the validator refused
  std::size_t dropped_benchmarks = 0; ///< benchmarks lost after max retries
  util::Seconds backoff{0.0};         ///< accounted retry backoff
  util::Seconds stalled{0.0};         ///< accounted timeout stalls
};

/// A sweep point that survived the fault plane: the measurements that
/// completed, the benchmarks that did not, and the cost of getting there.
struct RobustSuitePoint {
  SuitePoint point;                  ///< surviving measurements only
  std::vector<std::string> missing;  ///< benchmarks dropped after retries
  PointCounters counters;

  [[nodiscard]] bool degraded() const { return !missing.empty(); }
};

/// Meter measurements a robust sweep point may consume at most — the
/// WattsUpConfig::run_offset / FaultyMeter stride that keeps per-point
/// instruments on non-overlapping streams even when every attempt retries.
[[nodiscard]] std::size_t robust_measurements_per_point(
    const SuiteConfig& suite, const RobustConfig& robust);

/// SuiteRunner wrapped in the fault plane and the recovery policy.
///
/// Meter stack: inner meter -> FaultyMeter (injects the plan's meter
/// faults; measurement indices start at point_index *
/// robust_measurements_per_point) -> ValidatingMeter (telemetry checks) ->
/// SuiteRunner. Run-level faults are consulted per (point, benchmark,
/// attempt); failed or rejected attempts retry with accounted backoff up
/// to max_retries, then the benchmark is dropped and recorded in
/// `missing`. Exceptions other than ReadingRejected propagate — a real
/// bug must not be retried into silence.
class RobustSuiteRunner {
 public:
  /// `meter` must outlive the runner. `point_index` selects the fault and
  /// meter streams for this sweep point.
  RobustSuiteRunner(sim::ClusterSpec cluster, power::PowerMeter& meter,
                    FaultPlan plan, RobustConfig robust = {},
                    SuiteConfig suite = {}, std::size_t point_index = 0);

  /// The paper suite (suite_benchmarks(config)) at one scale, run through
  /// the fault plane and the recovery policy. Exactly equivalent to
  /// begin_point; run_member for each roster index in order; finish_point.
  [[nodiscard]] RobustSuitePoint run_suite(std::size_t processes);

  /// Split form of run_suite for the task-graph executor (DESIGN.md §12):
  /// a robust point's members form a dependency CHAIN, not a fan-out,
  /// because the FaultyMeter stream is a serial per-point resource (a
  /// failed or timed-out attempt consumes no measurement, so member b's
  /// meter position depends on what members 0..b-1 actually consumed).
  /// Call begin_point once, then run_member for each suite_benchmarks()
  /// index in ascending order, then finish_point — any other order is a
  /// caller bug. The serial run_suite is this exact sequence, so the two
  /// paths cannot drift.
  void begin_point(RobustSuitePoint& out, std::size_t processes);
  void run_member(RobustSuitePoint& out, std::size_t member,
                  std::size_t processes);
  void finish_point(RobustSuitePoint& out);

  [[nodiscard]] const sim::ClusterSpec& cluster() const {
    return runner_.cluster();
  }

  /// Attaches (or detaches, with nullptr) a trace recorder. The robust
  /// layer records fault and recovery events (failures, stalls, rejected
  /// readings, backoff) on top of the SuiteRunner's benchmark spans, and
  /// mirrors PointCounters into the recorder's metric registry.
  /// Observational only; the recorder must outlive the runner.
  void attach_recorder(obs::PointRecorder* recorder);

 private:
  FaultPlan plan_;
  RobustConfig robust_;
  SuiteConfig suite_;
  std::size_t point_index_;
  /// FaultyMeter counter snapshot taken by begin_point; finish_point turns
  /// it into the point's meter-fault delta.
  std::size_t meter_faults_before_ = 0;
  FaultyMeter faulty_;
  ValidatingMeter validating_;
  SuiteRunner runner_;
  obs::PointRecorder* recorder_ = nullptr;
};

}  // namespace tgi::harness
