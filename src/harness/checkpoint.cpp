#include "harness/checkpoint.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <utility>

#include "harness/measurement_io.h"
#include "util/atomic_file.h"
#include "util/error.h"
#include "util/io_faults.h"
#include "util/log.h"

namespace tgi::harness {

std::uint64_t journal_spec_hash(std::string_view canonical_spec) {
  // FNV-1a 64: tiny, dependency-free, and stable across platforms — this
  // hash only guards against resuming under a different spec, it is not a
  // cryptographic commitment.
  std::uint64_t hash = 14695981039346656037ULL;
  for (const char ch : canonical_spec) {
    hash ^= static_cast<unsigned char>(ch);
    hash *= 1099511628211ULL;
  }
  return hash;
}

namespace {

constexpr char kMagic[] = "TGIJ1";
constexpr char kFieldSep = '\x1f';  // US: separates name=value fields
constexpr char kListSep = '\x1e';   // RS: separates nested list elements

/// Percent-escapes the bytes that would break record/field/list structure.
std::string escape(std::string_view raw) {
  static constexpr char kHex[] = "0123456789ABCDEF";
  std::string out;
  out.reserve(raw.size());
  for (const char ch : raw) {
    if (ch == '%' || ch == '\n' || ch == '\r' || ch == kFieldSep ||
        ch == kListSep) {
      const auto byte = static_cast<unsigned char>(ch);
      out += '%';
      out += kHex[byte >> 4U];
      out += kHex[byte & 0xFU];
    } else {
      out += ch;
    }
  }
  return out;
}

int hex_digit(char ch) {
  if (ch >= '0' && ch <= '9') return ch - '0';
  if (ch >= 'A' && ch <= 'F') return ch - 'A' + 10;
  if (ch >= 'a' && ch <= 'f') return ch - 'a' + 10;
  return -1;
}

std::string unescape(std::string_view escaped) {
  std::string out;
  out.reserve(escaped.size());
  for (std::size_t i = 0; i < escaped.size(); ++i) {
    const char ch = escaped[i];
    if (ch != '%') {
      out += ch;
      continue;
    }
    if (i + 2 >= escaped.size()) {
      throw util::TgiError("journal: truncated percent escape");
    }
    const int hi = hex_digit(escaped[i + 1]);
    const int lo = hex_digit(escaped[i + 2]);
    if (hi < 0 || lo < 0) {
      throw util::TgiError("journal: malformed percent escape");
    }
    out += static_cast<char>((hi << 4) | lo);
    i += 2;
  }
  return out;
}

/// Bit-exact double serialization: C hexfloat via printf %a / strtod.
std::string encode_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

double decode_double(const std::string& text) {
  if (text.empty()) throw util::TgiError("journal: empty double field");
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size()) {
    throw util::TgiError("journal: bad double '" + text + "'");
  }
  return v;
}

std::size_t decode_size(const std::string& text) {
  if (text.empty()) throw util::TgiError("journal: empty integer field");
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size() || text[0] == '-' ||
      text[0] == '+') {
    throw util::TgiError("journal: bad integer '" + text + "'");
  }
  return static_cast<std::size_t>(v);
}

std::string crc_hex(std::uint32_t crc) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%08x", crc);
  return buf;
}

std::string hash_hex(std::uint64_t hash) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, hash);
  return buf;
}

std::uint64_t decode_hash(const std::string& text) {
  if (text.size() != 16) {
    throw util::TgiError("journal: spec hash must be 16 hex digits");
  }
  std::uint64_t hash = 0;
  for (const char ch : text) {
    const int digit = hex_digit(ch);
    if (digit < 0) throw util::TgiError("journal: bad spec hash digit");
    hash = (hash << 4U) | static_cast<std::uint64_t>(digit);
  }
  return hash;
}

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(begin, i - begin));
      begin = i + 1;
    }
  }
  return out;
}

/// Ordered field list serializer: name=escape(value) joined by US.
class FieldWriter {
 public:
  void add(std::string_view name, std::string_view value) {
    if (!payload_.empty()) payload_ += kFieldSep;
    payload_.append(name);
    payload_ += '=';
    payload_ += escape(value);
  }
  void add_size(std::string_view name, std::size_t value) {
    add(name, std::to_string(value));
  }
  void add_double(std::string_view name, double value) {
    add(name, encode_double(value));
  }
  [[nodiscard]] const std::string& payload() const { return payload_; }

 private:
  std::string payload_;
};

/// Parsed field map with require-style accessors that throw TgiError.
class FieldReader {
 public:
  explicit FieldReader(const std::string& payload) {
    for (const std::string& token : split(payload, kFieldSep)) {
      const std::size_t eq = token.find('=');
      if (eq == std::string::npos || eq == 0) {
        throw util::TgiError("journal: field is not name=value");
      }
      const std::string name = token.substr(0, eq);
      if (!fields_.emplace(name, unescape(token.substr(eq + 1))).second) {
        throw util::TgiError("journal: duplicate field '" + name + "'");
      }
    }
  }

  [[nodiscard]] const std::string& get(const std::string& name) const {
    const auto it = fields_.find(name);
    if (it == fields_.end()) {
      throw util::TgiError("journal: missing field '" + name + "'");
    }
    return it->second;
  }
  [[nodiscard]] std::size_t get_size(const std::string& name) const {
    return decode_size(get(name));
  }
  [[nodiscard]] double get_double(const std::string& name) const {
    return decode_double(get(name));
  }
  [[nodiscard]] bool get_flag(const std::string& name) const {
    const std::string& v = get(name);
    if (v == "1") return true;
    if (v == "0") return false;
    throw util::TgiError("journal: flag '" + name + "' must be 0 or 1");
  }

 private:
  std::map<std::string, std::string> fields_;
};

std::string encode_record_line(const std::string& kind,
                               const std::string& payload) {
  const std::string checked = kind + " " + payload;
  return std::string(kMagic) + " " + kind + " " +
         crc_hex(util::crc32(checked)) + " " + payload + "\n";
}

std::string encode_values(const std::vector<std::size_t>& values) {
  std::string out;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out += ',';
    out += std::to_string(values[i]);
  }
  return out;
}

std::vector<std::size_t> decode_values(const std::string& text) {
  std::vector<std::size_t> out;
  if (text.empty()) return out;
  for (const std::string& item : split(text, ',')) {
    out.push_back(decode_size(item));
  }
  return out;
}

std::string encode_measurements(
    const std::vector<core::BenchmarkMeasurement>& ms) {
  if (ms.empty()) return {};
  std::ostringstream out;
  write_measurements(out, ms);
  return out.str();
}

std::vector<core::BenchmarkMeasurement> decode_measurements(
    const std::string& text) {
  if (text.empty()) return {};
  std::istringstream in(text);
  return read_measurements(in);  // validates header, rows, physics
}

std::string encode_events(const std::vector<obs::TraceEvent>& events) {
  std::string out;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const obs::TraceEvent& e = events[i];
    if (i != 0) out += kListSep;
    std::string enc;
    enc += (e.kind == obs::TraceEvent::Kind::kSpan) ? 'S' : 'I';
    enc += kFieldSep;
    enc += escape(e.name);
    enc += kFieldSep;
    enc += escape(e.category);
    enc += kFieldSep;
    enc += std::to_string(e.benchmark);
    enc += kFieldSep;
    enc += std::to_string(e.attempt);
    enc += kFieldSep;
    enc += encode_double(e.start.value());
    enc += kFieldSep;
    enc += encode_double(e.duration.value());
    for (const auto& [key, value] : e.args) {
      enc += kFieldSep;
      enc += escape(key);
      enc += kFieldSep;
      enc += escape(value);
    }
    out += enc;
  }
  return out;
}

std::vector<obs::TraceEvent> decode_events(const std::string& text) {
  std::vector<obs::TraceEvent> out;
  if (text.empty()) return out;
  for (const std::string& item : split(text, kListSep)) {
    const std::vector<std::string> f = split(item, kFieldSep);
    if (f.size() < 7 || (f.size() - 7) % 2 != 0) {
      throw util::TgiError("journal: malformed trace event");
    }
    obs::TraceEvent e;
    if (f[0] == "S") {
      e.kind = obs::TraceEvent::Kind::kSpan;
    } else if (f[0] == "I") {
      e.kind = obs::TraceEvent::Kind::kInstant;
    } else {
      throw util::TgiError("journal: unknown trace event kind '" + f[0] +
                           "'");
    }
    e.name = unescape(f[1]);
    e.category = unescape(f[2]);
    e.benchmark = decode_size(f[3]);
    e.attempt = decode_size(f[4]);
    e.start = util::Seconds(decode_double(f[5]));
    e.duration = util::Seconds(decode_double(f[6]));
    for (std::size_t i = 7; i + 1 < f.size(); i += 2) {
      e.args.emplace_back(unescape(f[i]), unescape(f[i + 1]));
    }
    out.push_back(std::move(e));
  }
  return out;
}

std::string encode_metrics(const std::vector<obs::Metric>& metrics) {
  std::string out;
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    const obs::Metric& m = metrics[i];
    if (i != 0) out += kListSep;
    out += escape(m.name);
    out += kFieldSep;
    out += (m.kind == obs::MetricKind::kGauge) ? 'g' : 'c';
    out += kFieldSep;
    out += encode_double(m.value);
  }
  return out;
}

std::vector<obs::Metric> decode_metrics(const std::string& text) {
  std::vector<obs::Metric> out;
  if (text.empty()) return out;
  for (const std::string& item : split(text, kListSep)) {
    const std::vector<std::string> f = split(item, kFieldSep);
    if (f.size() != 3) throw util::TgiError("journal: malformed metric");
    obs::Metric m;
    m.name = unescape(f[0]);
    if (f[1] == "c") {
      m.kind = obs::MetricKind::kCounter;
    } else if (f[1] == "g") {
      m.kind = obs::MetricKind::kGauge;
    } else {
      throw util::TgiError("journal: unknown metric kind '" + f[1] + "'");
    }
    m.value = decode_double(f[2]);
    out.push_back(std::move(m));
  }
  return out;
}

std::string encode_missing(const std::vector<std::string>& missing) {
  std::string out;
  for (std::size_t i = 0; i < missing.size(); ++i) {
    if (i != 0) out += kListSep;
    out += escape(missing[i]);
  }
  return out;
}

std::vector<std::string> decode_missing(const std::string& text) {
  std::vector<std::string> out;
  if (text.empty()) return out;
  for (const std::string& item : split(text, kListSep)) {
    out.push_back(unescape(item));
  }
  return out;
}

PointRecord parse_point_payload(const std::string& payload) {
  const FieldReader fields(payload);
  PointRecord record;
  record.index = fields.get_size("index");
  record.value = fields.get_size("value");
  record.point.processes = fields.get_size("processes");
  record.point.nodes = fields.get_size("nodes");
  record.point.measurements = decode_measurements(fields.get("measurements"));
  record.robust = fields.get_flag("robust");
  if (record.robust) {
    record.missing = decode_missing(fields.get("missing"));
    record.counters.attempts = fields.get_size("attempts");
    record.counters.retries = fields.get_size("retries");
    record.counters.run_faults = fields.get_size("run_faults");
    record.counters.meter_faults = fields.get_size("meter_faults");
    record.counters.rejected_readings = fields.get_size("rejected_readings");
    record.counters.dropped_benchmarks = fields.get_size("dropped_benchmarks");
    record.counters.backoff = util::Seconds(fields.get_double("backoff"));
    record.counters.stalled = util::Seconds(fields.get_double("stalled"));
  }
  record.traced = fields.get_flag("traced");
  if (record.traced) {
    record.trace_now = util::Seconds(fields.get_double("now"));
    if (record.trace_now.value() < 0.0) {
      throw util::TgiError("journal: negative recorder clock");
    }
    record.events = decode_events(fields.get("events"));
    record.trace_metrics = decode_metrics(fields.get("metrics"));
  }
  return record;
}

struct ParsedLine {
  std::string kind;
  std::string payload;
};

/// Validates magic + tokenization + CRC of one journal line; throws
/// TgiError with the quarantine reason on any defect.
ParsedLine parse_record_line(const std::string& line) {
  const std::size_t s1 = line.find(' ');
  if (s1 == std::string::npos || line.substr(0, s1) != kMagic) {
    throw util::TgiError("not a journal record (bad magic)");
  }
  const std::size_t s2 = line.find(' ', s1 + 1);
  if (s2 == std::string::npos) {
    throw util::TgiError("truncated record (no checksum field)");
  }
  const std::size_t s3 = line.find(' ', s2 + 1);
  if (s3 == std::string::npos) {
    throw util::TgiError("truncated record (no payload)");
  }
  ParsedLine parsed;
  parsed.kind = line.substr(s1 + 1, s2 - s1 - 1);
  const std::string crc_field = line.substr(s2 + 1, s3 - s2 - 1);
  parsed.payload = line.substr(s3 + 1);
  if (crc_field.size() != 8) {
    throw util::TgiError("checksum field must be 8 hex digits");
  }
  std::uint32_t expected = 0;
  for (const char ch : crc_field) {
    const int digit = hex_digit(ch);
    if (digit < 0) throw util::TgiError("bad checksum digit");
    expected = (expected << 4U) | static_cast<std::uint32_t>(digit);
  }
  const std::uint32_t actual =
      util::crc32(parsed.kind + " " + parsed.payload);
  if (actual != expected) {
    throw util::TgiError("checksum mismatch (want " + crc_hex(expected) +
                         ", record hashes to " + crc_hex(actual) + ")");
  }
  return parsed;
}

}  // namespace

std::string encode_header_record(std::uint64_t spec_hash,
                                 const std::string& mode,
                                 const std::vector<std::size_t>& values) {
  TGI_REQUIRE(mode == "plain" || mode == "robust",
              "journal mode must be 'plain' or 'robust', got '" << mode
                                                                << "'");
  FieldWriter fields;
  fields.add("v", "1");
  fields.add("spec", hash_hex(spec_hash));
  fields.add("mode", mode);
  fields.add("values", encode_values(values));
  return encode_record_line("header", fields.payload());
}

std::string encode_point_record(const PointRecord& record) {
  FieldWriter fields;
  fields.add_size("index", record.index);
  fields.add_size("value", record.value);
  fields.add_size("processes", record.point.processes);
  fields.add_size("nodes", record.point.nodes);
  fields.add("measurements", encode_measurements(record.point.measurements));
  fields.add("robust", record.robust ? "1" : "0");
  if (record.robust) {
    fields.add("missing", encode_missing(record.missing));
    fields.add_size("attempts", record.counters.attempts);
    fields.add_size("retries", record.counters.retries);
    fields.add_size("run_faults", record.counters.run_faults);
    fields.add_size("meter_faults", record.counters.meter_faults);
    fields.add_size("rejected_readings", record.counters.rejected_readings);
    fields.add_size("dropped_benchmarks",
                    record.counters.dropped_benchmarks);
    fields.add_double("backoff", record.counters.backoff.value());
    fields.add_double("stalled", record.counters.stalled.value());
  }
  fields.add("traced", record.traced ? "1" : "0");
  if (record.traced) {
    fields.add_double("now", record.trace_now.value());
    fields.add("events", encode_events(record.events));
    fields.add("metrics", encode_metrics(record.trace_metrics));
  }
  return encode_record_line("point", fields.payload());
}

JournalContents read_journal(const std::string& text) {
  JournalContents contents;
  if (text.empty()) return contents;
  const bool torn_tail = text.back() != '\n';
  const std::vector<std::string> lines = split(text, '\n');
  // split() yields one trailing empty element when the text ends in '\n';
  // drop it so line numbering matches the file.
  std::size_t count = lines.size();
  if (!torn_tail && count > 0 && lines[count - 1].empty()) --count;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t line_no = i + 1;
    const std::string& line = lines[i];
    if (line.empty()) continue;
    try {
      if (i == count - 1 && torn_tail) {
        throw util::TgiError(
            "torn record (no trailing newline — interrupted append)");
      }
      const ParsedLine parsed = parse_record_line(line);
      if (parsed.kind == "header") {
        if (contents.header_valid) {
          throw util::TgiError("duplicate header record");
        }
        const FieldReader fields(parsed.payload);
        if (fields.get("v") != "1") {
          throw util::TgiError("unsupported journal version '" +
                               fields.get("v") + "'");
        }
        const std::string& mode = fields.get("mode");
        if (mode != "plain" && mode != "robust") {
          throw util::TgiError("unknown journal mode '" + mode + "'");
        }
        contents.spec_hash = decode_hash(fields.get("spec"));
        contents.mode = mode;
        contents.values = decode_values(fields.get("values"));
        contents.header_valid = true;
      } else if (parsed.kind == "point") {
        contents.points.push_back(parse_point_payload(parsed.payload));
        contents.point_lines.push_back(line_no);
      } else {
        throw util::TgiError("unknown record kind '" + parsed.kind + "'");
      }
    } catch (const util::TgiError& e) {
      contents.damage.push_back(JournalDamage{line_no, e.what()});
    }
  }
  return contents;
}

JournalContents read_journal_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  TGI_REQUIRE(in.good(), "cannot open journal '" << path << "' for reading");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return read_journal(buffer.str());
}

JournalState reconcile_journal(const JournalContents& contents,
                               std::uint64_t spec_hash,
                               const std::string& mode,
                               const std::vector<std::size_t>& values) {
  JournalState state;
  state.damage = contents.damage;
  if (!contents.header_valid) {
    state.damage.push_back(JournalDamage{
        0, "journal header missing or damaged; recomputing every point"});
    return state;
  }
  if (contents.spec_hash != spec_hash) {
    throw util::TgiError(
        "checkpoint journal was written for a different sweep spec (journal "
        "spec " +
        hash_hex(contents.spec_hash) + ", current spec " +
        hash_hex(spec_hash) +
        "); delete the checkpoint directory or rerun without resume");
  }
  if (contents.mode != mode) {
    throw util::TgiError("checkpoint journal mode is '" + contents.mode +
                         "' but this sweep runs '" + mode + "'");
  }
  if (contents.values != values) {
    throw util::TgiError(
        "checkpoint journal sweep values do not match this sweep");
  }
  state.header_valid = true;
  const bool robust = (mode == "robust");
  for (std::size_t i = 0; i < contents.points.size(); ++i) {
    const PointRecord& record = contents.points[i];
    const std::size_t line =
        i < contents.point_lines.size() ? contents.point_lines[i] : 0;
    if (record.index >= values.size()) {
      state.damage.push_back(
          JournalDamage{line, "point index " + std::to_string(record.index) +
                                  " is outside this sweep"});
      continue;
    }
    if (record.value != values[record.index]) {
      state.damage.push_back(JournalDamage{
          line, "point " + std::to_string(record.index) +
                    " records sweep value " + std::to_string(record.value) +
                    " but this sweep has " +
                    std::to_string(values[record.index])});
      continue;
    }
    if (record.robust != robust) {
      state.damage.push_back(JournalDamage{
          line, "point " + std::to_string(record.index) +
                    " was journaled in the other sweep mode"});
      continue;
    }
    if (!record.traced) {
      // The engine always journals the observability section (resume must
      // be able to serve --trace); a record without one is foreign.
      state.damage.push_back(JournalDamage{
          line, "point " + std::to_string(record.index) +
                    " lacks the observability section"});
      continue;
    }
    if (!state.completed.emplace(record.index, record).second) {
      state.damage.push_back(JournalDamage{
          line, "duplicate record for point " +
                    std::to_string(record.index) + " (first valid wins)"});
    }
  }
  return state;
}

namespace {

void fill_trace_section(PointRecord& record,
                        const obs::PointRecorder* recorder) {
  if (recorder == nullptr) return;
  record.traced = true;
  record.trace_now = recorder->now();
  record.events = recorder->events();
  record.trace_metrics = recorder->metrics().sorted();
}

}  // namespace

PointRecord make_point_record(std::size_t index, std::size_t value,
                              const SuitePoint& point,
                              const obs::PointRecorder* recorder) {
  PointRecord record;
  record.index = index;
  record.value = value;
  record.point = point;
  record.robust = false;
  fill_trace_section(record, recorder);
  return record;
}

PointRecord make_robust_point_record(std::size_t index, std::size_t value,
                                     const RobustSuitePoint& point,
                                     const obs::PointRecorder* recorder) {
  PointRecord record;
  record.index = index;
  record.value = value;
  record.point = point.point;
  record.robust = true;
  record.missing = point.missing;
  record.counters = point.counters;
  fill_trace_section(record, recorder);
  return record;
}

void restore_recorder(const PointRecord& record,
                      obs::PointRecorder& recorder) {
  TGI_REQUIRE(record.traced,
              "point " << record.index
                       << " was journaled without a trace section");
  for (const obs::TraceEvent& event : record.events) {
    recorder.restore_event(event);
  }
  for (const obs::Metric& metric : record.trace_metrics) {
    if (metric.kind == obs::MetricKind::kGauge) {
      recorder.metrics().set_max(metric.name, metric.value);
    } else {
      recorder.metrics().add(metric.name, metric.value);
    }
  }
  recorder.advance(record.trace_now);  // exact: clock starts at 0.0
}

CheckpointJournal::CheckpointJournal(CheckpointConfig config,
                                     std::uint64_t spec_hash,
                                     std::string mode,
                                     std::vector<std::size_t> values)
    : config_(std::move(config)),
      spec_hash_(spec_hash),
      mode_(std::move(mode)),
      values_(std::move(values)) {
  TGI_REQUIRE(!config_.directory.empty(),
              "CheckpointJournal needs a directory");
  TGI_REQUIRE(mode_ == "plain" || mode_ == "robust",
              "journal mode must be 'plain' or 'robust'");
  std::error_code ec;
  std::filesystem::create_directories(config_.directory, ec);
  TGI_REQUIRE(!ec, "cannot create checkpoint directory '"
                       << config_.directory << "': " << ec.message());
  journal_path_ = config_.directory + "/journal.tgij";

  const std::string header =
      encode_header_record(spec_hash_, mode_, values_);
  if (config_.resume && std::filesystem::exists(journal_path_)) {
    JournalState state = reconcile_journal(read_journal_file(journal_path_),
                                           spec_hash_, mode_, values_);
    completed_ = std::move(state.completed);
    damage_ = std::move(state.damage);
    for (const JournalDamage& d : damage_) {
      TGI_LOG_WARN("checkpoint: quarantined journal record (line "
                   << d.line << "): " << d.reason);
    }
    TGI_LOG_INFO("checkpoint: resuming with "
                 << completed_.size() << "/" << values_.size()
                 << " points from " << journal_path_);
    // Compact: rewrite header + surviving records in index order, so
    // damage and duplicates heal on every resume. Atomic — a crash here
    // leaves the old journal intact.
    std::string compacted = header;
    for (const auto& [index, record] : completed_) {
      compacted += encode_point_record(record);
    }
    util::atomic_write_file(journal_path_, compacted);
  } else {
    if (config_.resume) {
      TGI_LOG_WARN("checkpoint: no journal at " << journal_path_
                                                << "; starting fresh");
    }
    util::atomic_write_file(journal_path_, header);
  }
  // The journal is the one output that must survive a SIGKILL mid-sweep,
  // so it appends in place; per-record CRCs replace rename atomicity.
  out_.open(journal_path_, std::ios::binary | std::ios::app);
  TGI_REQUIRE(out_.good(), "cannot open journal '" << journal_path_
                                                   << "' for appending");
}

bool CheckpointJournal::is_complete(std::size_t index) const {
  return completed_.find(index) != completed_.end();
}

const PointRecord& CheckpointJournal::completed(std::size_t index) const {
  const auto it = completed_.find(index);
  TGI_REQUIRE(it != completed_.end(),
              "point " << index << " is not in the journal");
  return it->second;
}

void CheckpointJournal::record(const PointRecord& record) {
  TGI_REQUIRE(record.index < values_.size(),
              "journal record index out of range");
  TGI_REQUIRE(record.robust == (mode_ == "robust"),
              "journal record mode does not match the journal");
  const std::string line = encode_point_record(record);
  const std::lock_guard<std::mutex> lock(mu_);
  // Deterministic I/O fault injection (DESIGN.md §15): tear this append
  // exactly the way ENOSPC/EIO/a crash mid-write would. A short write
  // leaves a prefix with no trailing newline — the same torn tail a
  // SIGKILL leaves — and the per-record CRC quarantines it on read.
  const util::IoFaultKind fault = util::next_io_fault();
  if (fault != util::IoFaultKind::kNone) {
    if (fault == util::IoFaultKind::kShortWrite) {
      out_ << line.substr(0, line.size() / 2);
      out_.flush();
    }
    throw util::TgiError(std::string("journal append failed (injected ") +
                         util::io_fault_name(fault) + ") for '" +
                         journal_path_ + "'");
  }
  out_ << line;
  out_.flush();
  TGI_CHECK(out_.good(), "journal append failed for '" << journal_path_
                                                       << "'");
}

void CheckpointJournal::note_resumed(std::size_t index, std::size_t value) {
  const std::lock_guard<std::mutex> lock(mu_);
  resumed_[index] = value;
}

void CheckpointJournal::finalize() {
  if (!config_.resume) return;
  // One `point_resumed` instant per replayed point, built with the same
  // obs machinery as trace.json but written to a separate file: which
  // points resume depends on where the previous run died, so this record
  // must never leak into the byte-compared trace channel.
  std::vector<obs::PointRecorder> recorders;
  recorders.reserve(resumed_.size());
  for (const auto& [index, value] : resumed_) {
    obs::PointRecorder recorder(index, std::to_string(value));
    recorder.instant("point_resumed", "resume",
                     {{"value", std::to_string(value)},
                      {"source", "journal"}});
    recorder.metrics().add("points_resumed");
    recorders.push_back(std::move(recorder));
  }
  const obs::SweepTrace trace = obs::SweepTrace::merge(std::move(recorders));
  util::AtomicFile out(config_.directory + "/resume.json");
  trace.write_chrome_trace(out.stream());
  out.commit();
}

}  // namespace tgi::harness
