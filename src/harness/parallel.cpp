#include "harness/parallel.h"

#include <utility>

#include "util/error.h"
#include "util/thread_pool.h"

namespace tgi::harness {

MeterFactory wattsup_meter_factory(power::WattsUpConfig base,
                                   std::size_t measurements_per_point) {
  TGI_REQUIRE(measurements_per_point >= 1,
              "a sweep point performs at least one measurement");
  return [base, measurements_per_point](std::size_t point_index) {
    power::WattsUpConfig config = base;
    config.run_offset =
        base.run_offset +
        static_cast<std::uint64_t>(point_index) * measurements_per_point;
    return std::make_unique<power::WattsUpMeter>(config);
  };
}

MeterFactory model_meter_factory(util::Seconds sample_interval) {
  return [sample_interval](std::size_t /*point_index*/) {
    return std::make_unique<power::ModelMeter>(sample_interval);
  };
}

ParallelSweep::ParallelSweep(sim::ClusterSpec cluster,
                             MeterFactory meter_factory,
                             ParallelSweepConfig config)
    : cluster_(std::move(cluster)),
      meter_factory_(std::move(meter_factory)),
      config_(std::move(config)) {
  TGI_REQUIRE(static_cast<bool>(meter_factory_),
              "ParallelSweep needs a meter factory");
}

std::vector<SuitePoint> ParallelSweep::run_with(
    const std::vector<std::size_t>& values, const SweepPointFn& fn) const {
  TGI_REQUIRE(static_cast<bool>(fn), "ParallelSweep::run_with: empty fn");
  // Each point is fully self-contained: its own meter (seeded from the
  // point index by the factory) and its own SuiteRunner. Results land in
  // a preallocated slot, so completion order cannot reorder the output.
  const auto run_point = [&](std::size_t k) {
    const std::unique_ptr<power::PowerMeter> meter = meter_factory_(k);
    TGI_CHECK(meter != nullptr, "meter factory returned null");
    SuiteRunner runner(cluster_, *meter, config_.suite);
    return fn(runner, values[k]);
  };

  std::size_t threads = config_.threads;
  if (threads == 0) threads = util::ThreadPool::default_thread_count();
  std::vector<SuitePoint> results(values.size());
  if (threads <= 1 || values.size() <= 1) {
    for (std::size_t k = 0; k < values.size(); ++k) results[k] = run_point(k);
    return results;
  }
  util::ThreadPool pool(threads < values.size() ? threads : values.size());
  util::parallel_for(pool, values.size(),
                     [&](std::size_t k) { results[k] = run_point(k); });
  return results;
}

std::vector<RobustSuitePoint> ParallelSweep::run_robust(
    const std::vector<std::size_t>& process_counts, const FaultPlan& plan,
    const RobustConfig& robust) const {
  // Same collection-by-index discipline as run_with; the fault plane adds
  // no shared state (FaultPlan decisions are pure functions of indices).
  const auto run_point = [&](std::size_t k) {
    const std::unique_ptr<power::PowerMeter> meter = meter_factory_(k);
    TGI_CHECK(meter != nullptr, "meter factory returned null");
    RobustSuiteRunner runner(cluster_, *meter, plan, robust, config_.suite,
                             k);
    return runner.run_suite(process_counts[k]);
  };

  std::size_t threads = config_.threads;
  if (threads == 0) threads = util::ThreadPool::default_thread_count();
  std::vector<RobustSuitePoint> results(process_counts.size());
  if (threads <= 1 || process_counts.size() <= 1) {
    for (std::size_t k = 0; k < process_counts.size(); ++k) {
      results[k] = run_point(k);
    }
    return results;
  }
  util::ThreadPool pool(threads < process_counts.size()
                            ? threads
                            : process_counts.size());
  util::parallel_for(pool, process_counts.size(),
                     [&](std::size_t k) { results[k] = run_point(k); });
  return results;
}

std::vector<SuitePoint> ParallelSweep::run(
    const std::vector<std::size_t>& process_counts) const {
  return run_with(process_counts,
                  [](SuiteRunner& runner, std::size_t processes) {
                    return runner.run_suite(processes);
                  });
}

std::vector<SuitePoint> ParallelSweep::run_extended(
    const std::vector<std::size_t>& process_counts) const {
  return run_with(process_counts,
                  [](SuiteRunner& runner, std::size_t processes) {
                    return runner.run_extended_suite(processes);
                  });
}

}  // namespace tgi::harness
