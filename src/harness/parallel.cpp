#include "harness/parallel.h"

#include <string>
#include <utility>

#include "harness/taskgraph.h"
#include "util/error.h"
#include "util/thread_pool.h"

namespace tgi::harness {

MeterFactory wattsup_meter_factory(power::WattsUpConfig base,
                                   std::size_t measurements_per_point) {
  TGI_REQUIRE(measurements_per_point >= 1,
              "a sweep point performs at least one measurement");
  return [base, measurements_per_point](std::size_t point_index) {
    power::WattsUpConfig config = base;
    config.run_offset =
        base.run_offset +
        static_cast<std::uint64_t>(point_index) * measurements_per_point;
    return std::make_unique<power::WattsUpMeter>(config);
  };
}

MeterFactory model_meter_factory(util::Seconds sample_interval) {
  return [sample_interval](std::size_t /*point_index*/) {
    return std::make_unique<power::ModelMeter>(sample_interval);
  };
}

TaskMeterFactory wattsup_task_meter_factory(
    power::WattsUpConfig base, std::size_t measurements_per_point) {
  TGI_REQUIRE(measurements_per_point >= 1,
              "a sweep point performs at least one measurement");
  return [base, measurements_per_point](std::size_t point_index,
                                        std::size_t task_index) {
    TGI_REQUIRE(task_index < measurements_per_point,
                "task index " << task_index << " out of range for "
                              << measurements_per_point
                              << " measurements per point");
    power::WattsUpConfig config = base;
    config.run_offset =
        base.run_offset +
        static_cast<std::uint64_t>(point_index) * measurements_per_point +
        task_index;
    return std::make_unique<power::WattsUpMeter>(config);
  };
}

TaskMeterFactory model_task_meter_factory(util::Seconds sample_interval) {
  return [sample_interval](std::size_t /*point_index*/,
                           std::size_t /*task_index*/) {
    return std::make_unique<power::ModelMeter>(sample_interval);
  };
}

ParallelSweep::ParallelSweep(sim::ClusterSpec cluster,
                             MeterFactory meter_factory,
                             ParallelSweepConfig config)
    : cluster_(std::move(cluster)),
      meter_factory_(std::move(meter_factory)),
      config_(std::move(config)) {
  TGI_REQUIRE(static_cast<bool>(meter_factory_),
              "ParallelSweep needs a meter factory");
}

namespace {

/// Runs run_point(0 .. count-1) with the engine's execution discipline
/// (inline when threads <= 1, else a pool), bracketing each point with a
/// wall span when a profiler is attached. The profiler only observes —
/// scheduling and results are identical with and without it.
void execute_points(std::size_t count, std::size_t threads,
                    obs::WallProfiler* profiler,
                    const std::function<void(std::size_t)>& run_point) {
  if (threads == 0) threads = util::ThreadPool::default_thread_count();
  if (threads <= 1 || count <= 1) {
    for (std::size_t k = 0; k < count; ++k) {
      if (profiler != nullptr) {
        const double start = profiler->now_us();
        run_point(k);
        profiler->record("point " + std::to_string(k), 0, start,
                         profiler->now_us());
      } else {
        run_point(k);
      }
    }
    return;
  }
  util::ThreadPool pool(threads < count ? threads : count);
  if (profiler != nullptr) pool.set_task_hook(profiler->task_hook("point"));
  util::parallel_for(pool, count, run_point);
}

/// Preallocates one recorder per point (index + human label) when tracing
/// is requested; empty otherwise.
std::vector<obs::PointRecorder> make_recorders(
    bool tracing, const std::vector<std::size_t>& values) {
  std::vector<obs::PointRecorder> recorders;
  if (!tracing) return recorders;
  recorders.reserve(values.size());
  for (std::size_t k = 0; k < values.size(); ++k) {
    recorders.emplace_back(k, std::to_string(values[k]));
  }
  return recorders;
}

}  // namespace

namespace {

/// Validates the journal handle against the call and returns it (null when
/// checkpointing is off).
CheckpointJournal* checked_journal(const ParallelSweepConfig& config,
                                   const char* mode,
                                   const std::vector<std::size_t>& values) {
  CheckpointJournal* journal = config.checkpoint;
  if (journal == nullptr) return nullptr;
  TGI_REQUIRE(journal->mode() == mode,
              "checkpoint journal mode '" << journal->mode()
                                          << "' does not match this sweep ('"
                                          << mode << "')");
  TGI_REQUIRE(journal->values() == values,
              "checkpoint journal sweep values do not match this sweep");
  return journal;
}

/// Replays journaled plain points serially, in index order, into their
/// preallocated slots, and returns the indices still to compute. Shared by
/// the point-granularity and task-granularity paths so resume semantics
/// cannot drift between them.
std::vector<std::size_t> replay_plain_points(
    CheckpointJournal* journal, const std::vector<std::size_t>& values,
    std::vector<SuitePoint>& results,
    std::vector<obs::PointRecorder>& recorders) {
  std::vector<std::size_t> pending;
  pending.reserve(values.size());
  for (std::size_t k = 0; k < values.size(); ++k) {
    if (journal != nullptr && journal->is_complete(k)) {
      const PointRecord& record = journal->completed(k);
      results[k] = record.point;
      restore_recorder(record, recorders[k]);
      journal->note_resumed(k, values[k]);
    } else {
      pending.push_back(k);
    }
  }
  return pending;
}

/// Robust twin of replay_plain_points.
std::vector<std::size_t> replay_robust_points(
    CheckpointJournal* journal, const std::vector<std::size_t>& values,
    std::vector<RobustSuitePoint>& results,
    std::vector<obs::PointRecorder>& recorders) {
  std::vector<std::size_t> pending;
  pending.reserve(values.size());
  for (std::size_t k = 0; k < values.size(); ++k) {
    if (journal != nullptr && journal->is_complete(k)) {
      const PointRecord& record = journal->completed(k);
      results[k] =
          RobustSuitePoint{record.point, record.missing, record.counters};
      restore_recorder(record, recorders[k]);
      journal->note_resumed(k, values[k]);
    } else {
      pending.push_back(k);
    }
  }
  return pending;
}

}  // namespace

std::vector<SuitePoint> ParallelSweep::run_with(
    const std::vector<std::size_t>& values, const SweepPointFn& fn,
    obs::SweepTrace* trace) const {
  TGI_REQUIRE(static_cast<bool>(fn), "ParallelSweep::run_with: empty fn");
  CheckpointJournal* journal = checked_journal(config_, "plain", values);
  // Each point is fully self-contained: its own meter (seeded from the
  // point index by the factory), its own SuiteRunner, and — when tracing —
  // its own recorder. Results and recorders land in preallocated slots,
  // so completion order cannot reorder the output. Journaling always
  // attaches recorders (attaching is observational): each record carries
  // its observability section so a later resume can serve --trace.
  std::vector<obs::PointRecorder> recorders =
      make_recorders(trace != nullptr || journal != nullptr, values);
  std::vector<SuitePoint> results(values.size());
  // Replay journaled points serially, in index order, into their
  // preallocated slots; only the remainder enters the parallel phase.
  const std::vector<std::size_t> pending =
      replay_plain_points(journal, values, results, recorders);
  const auto run_point = [this, &pending, &recorders, &results, &fn, &values,
                          journal](std::size_t i) {
    const std::size_t k = pending[i];
    const std::unique_ptr<power::PowerMeter> meter = meter_factory_(k);
    TGI_CHECK(meter != nullptr, "meter factory returned null");
    SuiteRunner runner(cluster_, *meter, config_.suite);
    if (!recorders.empty()) runner.attach_recorder(&recorders[k]);
    results[k] = fn(runner, values[k]);
    if (journal != nullptr) {
      journal->record(
          make_point_record(k, values[k], results[k], &recorders[k]));
    }
  };

  if (config_.granularity == SweepGranularity::kTask) {
    // The caller's fn is opaque, so the graph holds whole-point nodes —
    // same per-point body, graph-executor scheduling (DESIGN.md §12).
    run_point_task_graph(config_, pending, run_point);
  } else {
    execute_points(pending.size(), config_.threads, config_.profiler,
                   run_point);
  }
  if (journal != nullptr) journal->finalize();
  if (trace != nullptr) *trace = obs::SweepTrace::merge(std::move(recorders));
  return results;
}

std::vector<RobustSuitePoint> ParallelSweep::run_robust(
    const std::vector<std::size_t>& process_counts, const FaultPlan& plan,
    const RobustConfig& robust, obs::SweepTrace* trace) const {
  // Same collection-by-index discipline as run_with; the fault plane adds
  // no shared state (FaultPlan decisions are pure functions of indices).
  CheckpointJournal* journal =
      checked_journal(config_, "robust", process_counts);
  std::vector<obs::PointRecorder> recorders =
      make_recorders(trace != nullptr || journal != nullptr, process_counts);
  std::vector<RobustSuitePoint> results(process_counts.size());
  const std::vector<std::size_t> pending =
      replay_robust_points(journal, process_counts, results, recorders);
  if (config_.granularity == SweepGranularity::kTask) {
    // Benchmark chains per point (harness/taskgraph.h): the FaultyMeter
    // stream is a serial per-point resource, so members are edges in a
    // chain, not a fan-out.
    const TaskSweepInputs inputs{cluster_,        config_,  meter_factory_,
                                 process_counts,  pending,  recorders,
                                 journal};
    run_robust_task_graph(inputs, plan, robust, results);
    if (journal != nullptr) journal->finalize();
    if (trace != nullptr) {
      *trace = obs::SweepTrace::merge(std::move(recorders));
    }
    return results;
  }
  const auto run_point = [this, &pending, &recorders, &results, &plan,
                          &robust, &process_counts, journal](std::size_t i) {
    const std::size_t k = pending[i];
    const std::unique_ptr<power::PowerMeter> meter = meter_factory_(k);
    TGI_CHECK(meter != nullptr, "meter factory returned null");
    RobustSuiteRunner runner(cluster_, *meter, plan, robust, config_.suite,
                             k);
    if (!recorders.empty()) runner.attach_recorder(&recorders[k]);
    results[k] = runner.run_suite(process_counts[k]);
    if (journal != nullptr) {
      journal->record(
          make_robust_point_record(k, process_counts[k], results[k],
                                   &recorders[k]));
    }
  };

  execute_points(pending.size(), config_.threads, config_.profiler,
                 run_point);
  if (journal != nullptr) journal->finalize();
  if (trace != nullptr) *trace = obs::SweepTrace::merge(std::move(recorders));
  return results;
}

std::vector<SuitePoint> ParallelSweep::run_suite_graph(
    const std::vector<std::size_t>& values, bool extended,
    obs::SweepTrace* trace) const {
  CheckpointJournal* journal = checked_journal(config_, "plain", values);
  std::vector<obs::PointRecorder> recorders =
      make_recorders(trace != nullptr || journal != nullptr, values);
  std::vector<SuitePoint> results(values.size());
  const std::vector<std::size_t> pending =
      replay_plain_points(journal, values, results, recorders);
  const TaskSweepInputs inputs{cluster_, config_,   meter_factory_, values,
                               pending,  recorders, journal};
  run_plain_task_graph(inputs, extended, results);
  if (journal != nullptr) journal->finalize();
  if (trace != nullptr) *trace = obs::SweepTrace::merge(std::move(recorders));
  return results;
}

std::vector<SuitePoint> ParallelSweep::run(
    const std::vector<std::size_t>& process_counts,
    obs::SweepTrace* trace) const {
  if (config_.granularity == SweepGranularity::kTask) {
    return run_suite_graph(process_counts, /*extended=*/false, trace);
  }
  return run_with(
      process_counts,
      [](SuiteRunner& runner, std::size_t processes) {
        return runner.run_suite(processes);
      },
      trace);
}

std::vector<SuitePoint> ParallelSweep::run_extended(
    const std::vector<std::size_t>& process_counts,
    obs::SweepTrace* trace) const {
  if (config_.granularity == SweepGranularity::kTask) {
    return run_suite_graph(process_counts, /*extended=*/true, trace);
  }
  return run_with(
      process_counts,
      [](SuiteRunner& runner, std::size_t processes) {
        return runner.run_extended_suite(processes);
      },
      trace);
}

}  // namespace tgi::harness
