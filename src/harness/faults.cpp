#include "harness/faults.h"

#include <cmath>
#include <sstream>

#include "util/config.h"
#include "util/error.h"
#include "util/rng.h"

namespace tgi::harness {

namespace {

// Stream tags keeping meter-fault and run-fault decisions on disjoint
// RNG streams even for colliding indices.
constexpr std::uint64_t kMeterStream = 0x6d657465722d664cULL;
constexpr std::uint64_t kRunStream = 0x72756e2d6661756cULL;

/// Folds one index into a seed (SplitMix64 pass), chainable so a decision
/// keyed on (point, benchmark, attempt) gets its own stream.
std::uint64_t mix(std::uint64_t seed, std::uint64_t x) {
  util::SplitMix64 sm(seed ^ (x + 0x9e3779b97f4a7c15ULL));
  return sm.next();
}

void require_rate(double rate, const char* what) {
  TGI_REQUIRE(rate >= 0.0 && rate <= 1.0,
              what << " must be in [0, 1], got " << rate);
}

}  // namespace

const char* meter_fault_name(MeterFaultKind kind) {
  switch (kind) {
    case MeterFaultKind::kNone:
      return "none";
    case MeterFaultKind::kDropoutBurst:
      return "dropout-burst";
    case MeterFaultKind::kStuckAt:
      return "stuck-at";
    case MeterFaultKind::kGainSpike:
      return "gain-spike";
  }
  return "?";
}

const char* run_fault_name(RunFaultKind kind) {
  switch (kind) {
    case RunFaultKind::kNone:
      return "none";
    case RunFaultKind::kBenchmarkFailure:
      return "benchmark-failure";
    case RunFaultKind::kTimeout:
      return "timeout";
    case RunFaultKind::kTruncatedTrace:
      return "truncated-trace";
  }
  return "?";
}

bool FaultSpec::enabled() const {
  return dropout_burst_rate > 0.0 || stuck_rate > 0.0 || spike_rate > 0.0 ||
         failure_rate > 0.0 || timeout_rate > 0.0 || truncation_rate > 0.0;
}

void FaultSpec::validate() const {
  require_rate(dropout_burst_rate, "dropout_burst_rate");
  require_rate(stuck_rate, "stuck_rate");
  require_rate(spike_rate, "spike_rate");
  require_rate(failure_rate, "failure_rate");
  require_rate(timeout_rate, "timeout_rate");
  require_rate(truncation_rate, "truncation_rate");
  TGI_REQUIRE(dropout_burst_rate + stuck_rate + spike_rate <= 1.0,
              "meter fault rates must sum to <= 1");
  TGI_REQUIRE(failure_rate + timeout_rate + truncation_rate <= 1.0,
              "run fault rates must sum to <= 1");
  TGI_REQUIRE(window_fraction > 0.0 && window_fraction < 1.0,
              "window_fraction must be in (0, 1)");
  TGI_REQUIRE(truncation_fraction > 0.0 && truncation_fraction < 1.0,
              "truncation_fraction must be in (0, 1)");
  TGI_REQUIRE(spike_gain_max > 1.0, "spike_gain_max must be > 1");
}

FaultSpec parse_fault_spec(const std::string& text) {
  // Reuse the line-based key=value grammar: commas become newlines.
  std::string lines = text;
  for (char& c : lines) {
    if (c == ',') c = '\n';
  }
  const util::Config cfg = util::Config::parse(lines);
  FaultSpec spec;
  for (const std::string& key : cfg.keys()) {
    TGI_REQUIRE(key == "dropout" || key == "stuck" || key == "spike" ||
                    key == "failure" || key == "timeout" ||
                    key == "truncation" || key == "window" || key == "gain" ||
                    key == "tail" || key == "seed",
                "unknown fault spec key '" << key << "'");
  }
  spec.dropout_burst_rate = cfg.get_double("dropout", spec.dropout_burst_rate);
  spec.stuck_rate = cfg.get_double("stuck", spec.stuck_rate);
  spec.spike_rate = cfg.get_double("spike", spec.spike_rate);
  spec.failure_rate = cfg.get_double("failure", spec.failure_rate);
  spec.timeout_rate = cfg.get_double("timeout", spec.timeout_rate);
  spec.truncation_rate = cfg.get_double("truncation", spec.truncation_rate);
  spec.window_fraction = cfg.get_double("window", spec.window_fraction);
  spec.spike_gain_max = cfg.get_double("gain", spec.spike_gain_max);
  spec.truncation_fraction = cfg.get_double("tail", spec.truncation_fraction);
  spec.seed = static_cast<std::uint64_t>(
      cfg.get_int("seed", static_cast<long long>(spec.seed)));
  spec.validate();
  return spec;
}

std::string fault_spec_summary(const FaultSpec& spec) {
  std::ostringstream out;
  auto emit = [&](const char* key, double value) {
    if (value > 0.0) out << key << "=" << value << " ";
  };
  emit("dropout", spec.dropout_burst_rate);
  emit("stuck", spec.stuck_rate);
  emit("spike", spec.spike_rate);
  emit("failure", spec.failure_rate);
  emit("timeout", spec.timeout_rate);
  emit("truncation", spec.truncation_rate);
  out << "seed=" << spec.seed;
  return out.str();
}

FaultPlan::FaultPlan(FaultSpec spec) : spec_(spec) { spec_.validate(); }

MeterFault FaultPlan::meter_fault(std::uint64_t measurement_index) const {
  MeterFault fault;
  const double total =
      spec_.dropout_burst_rate + spec_.stuck_rate + spec_.spike_rate;
  if (total <= 0.0) return fault;
  util::Xoshiro256 rng(mix(mix(spec_.seed, kMeterStream), measurement_index));
  const double u = rng.uniform();
  if (u < spec_.dropout_burst_rate) {
    fault.kind = MeterFaultKind::kDropoutBurst;
  } else if (u < spec_.dropout_burst_rate + spec_.stuck_rate) {
    fault.kind = MeterFaultKind::kStuckAt;
  } else if (u < total) {
    fault.kind = MeterFaultKind::kGainSpike;
  } else {
    return fault;
  }
  fault.window_length = spec_.window_fraction;
  fault.window_start = rng.uniform(0.0, 1.0 - fault.window_length);
  if (fault.kind == MeterFaultKind::kGainSpike) {
    const double g = rng.uniform(1.5, spec_.spike_gain_max);
    fault.gain = rng.uniform() < 0.5 ? g : 1.0 / g;
  }
  return fault;
}

RunFault FaultPlan::run_fault(std::uint64_t point_index,
                              std::uint64_t benchmark_index,
                              std::uint64_t attempt) const {
  RunFault fault;
  const double total =
      spec_.failure_rate + spec_.timeout_rate + spec_.truncation_rate;
  if (total <= 0.0) return fault;
  util::Xoshiro256 rng(mix(
      mix(mix(mix(spec_.seed, kRunStream), point_index), benchmark_index),
      attempt));
  const double u = rng.uniform();
  if (u < spec_.failure_rate) {
    fault.kind = RunFaultKind::kBenchmarkFailure;
  } else if (u < spec_.failure_rate + spec_.timeout_rate) {
    fault.kind = RunFaultKind::kTimeout;
  } else if (u < total) {
    fault.kind = RunFaultKind::kTruncatedTrace;
  }
  return fault;
}

power::PowerTrace apply_meter_fault(const power::PowerTrace& trace,
                                    const MeterFault& fault) {
  if (fault.kind == MeterFaultKind::kNone) return trace;
  TGI_REQUIRE(trace.size() >= 2, "fault injection needs >= 2 samples");
  const auto& samples = trace.samples();
  const double t0 = samples.front().t.value();
  const double span = samples.back().t.value() - t0;
  const double lo = t0 + fault.window_start * span;
  const double hi = lo + fault.window_length * span;
  const auto in_window = [&](const power::PowerSample& s) {
    return s.t.value() >= lo && s.t.value() < hi;
  };

  power::PowerTrace out;
  double stuck_value = 0.0;
  bool stuck_value_set = false;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const power::PowerSample& s = samples[i];
    const bool boundary = i == 0 || i + 1 == samples.size();
    if (!in_window(s)) {
      out.add(s);
      continue;
    }
    switch (fault.kind) {
      case MeterFaultKind::kDropoutBurst:
        // Interior samples in the window are lost; the first and last
        // sample always survive so the reading still spans the run.
        if (boundary) out.add(s);
        break;
      case MeterFaultKind::kStuckAt:
        if (!stuck_value_set) {
          stuck_value = s.watts.value();
          stuck_value_set = true;
        }
        out.add({s.t, util::Watts(stuck_value)});
        break;
      case MeterFaultKind::kGainSpike:
        out.add({s.t, util::Watts(s.watts.value() * fault.gain)});
        break;
      case MeterFaultKind::kNone:
        out.add(s);
        break;
    }
  }
  TGI_CHECK(out.size() >= 2, "fault injection left fewer than 2 samples");
  return out;
}

power::PowerTrace truncate_trace(const power::PowerTrace& trace,
                                 double tail_fraction) {
  TGI_REQUIRE(tail_fraction > 0.0 && tail_fraction < 1.0,
              "tail_fraction must be in (0, 1)");
  TGI_REQUIRE(trace.size() >= 2, "truncation needs >= 2 samples");
  const auto& samples = trace.samples();
  const double t0 = samples.front().t.value();
  const double span = samples.back().t.value() - t0;
  const double cutoff = t0 + (1.0 - tail_fraction) * span;
  power::PowerTrace out;
  for (const power::PowerSample& s : samples) {
    if (s.t.value() <= cutoff) out.add(s);
  }
  // A pathological cutoff before the second sample would starve the
  // integrator; keep the first two samples as the minimal surviving log.
  if (out.size() < 2) {
    power::PowerTrace minimal;
    minimal.add(samples[0]);
    minimal.add(samples[1]);
    return minimal;
  }
  return out;
}

FaultyMeter::FaultyMeter(power::PowerMeter& inner, FaultPlan plan,
                         std::uint64_t measurement_offset)
    : inner_(inner), plan_(std::move(plan)), counter_(measurement_offset) {}

power::MeterReading FaultyMeter::measure(const power::PowerSource& source,
                                         util::Seconds duration) {
  power::MeterReading reading = inner_.measure(source, duration);
  const std::uint64_t index = counter_++;
  power::PowerTrace trace = std::move(reading.trace);
  bool touched = false;
  if (plan_.enabled()) {
    const MeterFault fault = plan_.meter_fault(index);
    if (fault.kind != MeterFaultKind::kNone) {
      trace = apply_meter_fault(trace, fault);
      ++faults_applied_;
      touched = true;
    }
  }
  if (armed_truncation_ > 0.0) {
    trace = truncate_trace(trace, armed_truncation_);
    armed_truncation_ = 0.0;
    touched = true;
  }
  if (!touched) {
    // Bit-identical passthrough: hand back the inner reading untouched.
    reading.trace = std::move(trace);
    return reading;
  }
  return power::summarize(std::move(trace));
}

std::string FaultyMeter::name() const {
  return "Faulty(" + inner_.name() + ")";
}

void FaultyMeter::arm_truncation(double tail_fraction) {
  TGI_REQUIRE(tail_fraction > 0.0 && tail_fraction < 1.0,
              "tail_fraction must be in (0, 1)");
  armed_truncation_ = tail_fraction;
}

}  // namespace tgi::harness
