#include "harness/native.h"

#include <cmath>

#include "fs/filesystem.h"
#include "kernels/gups.h"
#include "kernels/hpl2d.h"
#include "kernels/iozone.h"
#include "kernels/stream.h"
#include "util/error.h"

namespace tgi::harness {

std::pair<int, int> squarest_grid(int ranks) {
  TGI_REQUIRE(ranks >= 1, "need at least one rank");
  int p = static_cast<int>(std::sqrt(static_cast<double>(ranks)));
  while (ranks % p != 0) --p;
  return {p, ranks / p};
}

namespace {

core::BenchmarkMeasurement package(
    const power::NodePowerModel& node, std::string name, double performance,
    std::string unit, util::Seconds elapsed,
    power::ComponentUtilization profile) {
  core::BenchmarkMeasurement m;
  m.benchmark = std::move(name);
  m.performance = performance;
  m.metric_unit = std::move(unit);
  m.average_power = node.wall_power(profile);
  m.execution_time = elapsed;
  m.energy = m.average_power * m.execution_time;
  m.validate();
  return m;
}

}  // namespace

std::vector<core::BenchmarkMeasurement> run_native_suite(
    const NativeSuiteConfig& config,
    const power::NodePowerModel& node_power) {
  std::vector<core::BenchmarkMeasurement> out;

  // --- HPL (real 2D block-cyclic factorization, residual-verified) ------
  const auto [prows, pcols] = squarest_grid(config.ranks);
  kernels::Hpl2dConfig hpl_cfg;
  hpl_cfg.n = config.hpl_n;
  hpl_cfg.block_size = config.hpl_block;
  hpl_cfg.prows = prows;
  hpl_cfg.pcols = pcols;
  hpl_cfg.seed = config.seed;
  const kernels::HplResult hpl = kernels::run_hpl_mpisim_2d(hpl_cfg);
  TGI_REQUIRE(hpl.passed,
              "HPL failed its residual test: " << hpl.residual);
  out.push_back(package(node_power, "HPL",
                        util::in_megaflops(hpl.rate()), "MFLOPS",
                        hpl.elapsed,
                        {.cpu = 1.0, .memory = 0.4, .disk = 0.0,
                         .network = 0.1}));

  // --- STREAM (real Triad on host memory, closed-form validated) ---------
  kernels::StreamConfig stream_cfg;
  stream_cfg.array_elements = config.stream_elements;
  stream_cfg.iterations = config.stream_iterations;
  stream_cfg.threads = config.stream_threads;
  const kernels::StreamResult stream = kernels::run_stream(stream_cfg);
  TGI_REQUIRE(stream.validated, "STREAM validation failed");
  out.push_back(package(node_power, "STREAM",
                        util::in_megabytes_per_sec(stream.triad), "MBPS",
                        stream.elapsed,
                        {.cpu = 0.6, .memory = 1.0, .disk = 0.0,
                         .network = 0.0}));

  // --- IOzone (simulated filesystem, read-back verified) -----------------
  fs::SimFilesystem filesystem;
  kernels::IozoneConfig io_cfg;
  io_cfg.file_size = config.iozone_file;
  io_cfg.record_size = config.iozone_record;
  io_cfg.seed = config.seed;
  const kernels::IozoneResult io = kernels::run_iozone(filesystem, io_cfg);
  TGI_REQUIRE(io.validated, "IOzone read-back verification failed");
  out.push_back(package(node_power, "IOzone",
                        util::in_megabytes_per_sec(io.write), "MBPS",
                        io.elapsed,
                        {.cpu = 0.2, .memory = 0.3, .disk = 1.0,
                         .network = 0.0}));

  // --- GUPS (optional fourth member) --------------------------------------
  if (config.include_gups) {
    kernels::GupsConfig gups_cfg;
    gups_cfg.log2_table_words = config.gups_log2_table;
    gups_cfg.updates = 4ull << config.gups_log2_table;
    gups_cfg.threads = config.stream_threads;
    const kernels::GupsResult gups = kernels::run_gups(gups_cfg);
    TGI_REQUIRE(gups.validated, "GUPS verification failed");
    out.push_back(package(node_power, "GUPS", gups.gups, "GUPS",
                          gups.elapsed,
                          {.cpu = 0.8, .memory = 0.9, .disk = 0.0,
                           .network = 0.0}));
  }
  return out;
}

}  // namespace tgi::harness
