// Measurement CSV interchange.
//
// A site with a real plug meter produces (benchmark, performance, unit,
// watts, seconds, joules) tuples; this module round-trips them through CSV
// so the tgi_calc tool (tools/) can compute the Green Index of machines we
// never simulated. The format is the same one the bench harnesses emit
// with csv=path.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/measurement.h"

namespace tgi::harness {

/// Header row of the interchange format.
inline constexpr const char* kMeasurementCsvHeader =
    "benchmark,performance,unit,watts,seconds,joules";

/// Writes measurements (with header) to a stream / file.
void write_measurements(std::ostream& out,
                        const std::vector<core::BenchmarkMeasurement>& ms);
void write_measurements_file(
    const std::string& path,
    const std::vector<core::BenchmarkMeasurement>& ms);

/// Parses measurements from a stream / file. Validates every row (throws
/// TgiError on malformed rows, wrong header, or physically inconsistent
/// tuples).
[[nodiscard]] std::vector<core::BenchmarkMeasurement> read_measurements(
    std::istream& in);
[[nodiscard]] std::vector<core::BenchmarkMeasurement> read_measurements_file(
    const std::string& path);

/// Splits one CSV record, honoring RFC-4180 double-quote escaping.
/// Exposed for tests.
[[nodiscard]] std::vector<std::string> split_csv_record(
    const std::string& line);

}  // namespace tgi::harness
