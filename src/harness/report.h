// Figure/table rendering shared by all experiment harnesses.
//
// Every bench binary emits (a) a banner naming the paper artifact it
// reproduces, (b) an aligned text table of the series, and (c) optional CSV
// for replotting — all through these helpers so output is uniform.
#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace tgi::harness {

/// A single y(x) series.
struct Series {
  std::string x_label;
  std::string y_label;
  std::vector<double> x;
  std::vector<double> y;
};

/// Several y series over a shared x grid (Figure 6's panels).
struct MultiSeries {
  std::string x_label;
  std::vector<double> x;
  std::vector<std::pair<std::string, std::vector<double>>> series;
};

/// Prints "== Figure N: caption ==" style banner.
void print_banner(std::ostream& os, const std::string& artifact,
                  const std::string& caption);

/// Renders a series as an aligned two-column table.
void print_series(std::ostream& os, const Series& series, int precision = 3);

/// Renders a multi-series as an aligned table, one column per series.
void print_multi_series(std::ostream& os, const MultiSeries& multi,
                        int precision = 4);

/// Writes a series (or multi-series) as CSV to `path`.
void write_csv(const Series& series, const std::string& path);
void write_csv(const MultiSeries& multi, const std::string& path);

/// A crude text sparkline of y (for eyeballing trends in terminal output).
[[nodiscard]] std::string sparkline(const std::vector<double>& y);

}  // namespace tgi::harness

#include "power/trace.h"

namespace tgi::harness {

/// Writes a power trace as (seconds, watts) CSV — the raw meter log a
/// real Watts Up? session would leave behind.
void write_trace_csv(const power::PowerTrace& trace, const std::string& path);

}  // namespace tgi::harness
