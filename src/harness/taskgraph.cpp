#include "harness/taskgraph.h"

#include <memory>
#include <string>
#include <utility>

#include "util/error.h"
#include "util/task_graph.h"

namespace tgi::harness {

namespace {

/// The profile hook for a task-graph run: per-node wall spans on the
/// "task" track when a profiler is attached, nothing otherwise. Like the
/// point path's hook, observation only.
util::ThreadPool::TaskHook graph_hook(const ParallelSweepConfig& config) {
  if (config.profiler != nullptr) return config.profiler->task_hook("task");
  return {};
}

/// Folds one member's sub-recorder onto the point's real timeline, at the
/// join, in roster order. Each plain member records exactly one span at
/// sub-time 0.0, so re-basing is `0.0 + point.now()` — IEEE-exact, i.e.
/// bitwise the timestamp the serial interleaving would have recorded —
/// and the clock/metric folds (`advance(e_b)` per member, counter `+=`
/// per member) are the serial path's folds in the serial order.
void fold_member_recorder(obs::PointRecorder& point,
                          const obs::PointRecorder& sub) {
  for (obs::TraceEvent event : sub.events()) {
    event.start = event.start + point.now();
    point.restore_event(std::move(event));
  }
  point.advance(sub.now());
  point.metrics().merge(sub.metrics());
}

/// The whole-point fallback: without a TaskMeterFactory there is no
/// per-measurement replay contract to key member meters on, so each
/// pending point becomes one edge-free node running the classic serial
/// point body.
void run_whole_point_graph(const TaskSweepInputs& in, bool extended,
                           std::vector<SuitePoint>& results) {
  util::TaskGraph graph;
  for (std::size_t i = 0; i < in.pending.size(); ++i) {
    const std::size_t k = in.pending[i];
    graph.add_node(
        "point " + std::to_string(k), [&in, &results, extended, k] {
          const std::unique_ptr<power::PowerMeter> meter = in.point_meters(k);
          TGI_CHECK(meter != nullptr, "meter factory returned null");
          SuiteRunner runner(in.cluster, *meter, in.config.suite);
          if (!in.recorders.empty()) {
            runner.attach_recorder(&in.recorders[k]);
          }
          results[k] = extended ? runner.run_extended_suite(in.values[k])
                                : runner.run_suite(in.values[k]);
          if (in.journal != nullptr) {
            in.journal->record(make_point_record(k, in.values[k], results[k],
                                                 &in.recorders[k]));
          }
        });
  }
  graph.run(in.config.threads, graph_hook(in.config));
}

}  // namespace

void run_plain_task_graph(const TaskSweepInputs& in, bool extended,
                          std::vector<SuitePoint>& results) {
  if (!in.config.task_meters) {
    run_whole_point_graph(in, extended, results);
    return;
  }
  const std::vector<std::string> benches =
      extended ? extended_suite_benchmarks()
               : suite_benchmarks(in.config.suite);
  const std::size_t members = benches.size();
  // Per-pending-point scratch the member nodes fill and the join drains:
  // one measurement slot and (when the sweep records) one sub-recorder per
  // roster member. Graph edges (member -> join) provide the happens-before
  // that makes the join's reads race-free.
  std::vector<std::vector<core::BenchmarkMeasurement>> measured(
      in.pending.size(), std::vector<core::BenchmarkMeasurement>(members));
  std::vector<std::vector<obs::PointRecorder>> subs(
      in.pending.size(),
      std::vector<obs::PointRecorder>(in.recorders.empty() ? 0 : members));
  util::TaskGraph graph;
  for (std::size_t i = 0; i < in.pending.size(); ++i) {
    const std::size_t k = in.pending[i];
    std::vector<util::TaskGraph::NodeId> member_ids;
    member_ids.reserve(members);
    for (std::size_t b = 0; b < members; ++b) {
      member_ids.push_back(graph.add_node(
          "point " + std::to_string(k) + " " + benches[b],
          [&in, &benches, &measured, &subs, extended, i, b, k] {
            // This member's meter replays exactly the measurement the
            // serial point runner's shared meter would perform b
            // measurements in (TaskMeterFactory contract).
            const std::unique_ptr<power::PowerMeter> meter =
                in.config.task_meters(k, b);
            TGI_CHECK(meter != nullptr, "task meter factory returned null");
            SuiteRunner runner(in.cluster, *meter, in.config.suite);
            if (!subs[i].empty()) {
              // run_suite stamps (benchmark, attempt 0) per member;
              // run_extended_suite never stamps (extended spans carry
              // benchmark=0, attempt=0) — mirror both exactly.
              if (!extended) subs[i][b].set_context(b, 0);
              runner.attach_recorder(&subs[i][b]);
            }
            measured[i][b] = runner.run_benchmark(benches[b], in.values[k]);
          }));
    }
    const util::TaskGraph::NodeId join = graph.add_node(
        "point " + std::to_string(k) + " join",
        [&in, &measured, &subs, &results, members, i, k] {
          SuitePoint point;
          point.processes = in.values[k];
          point.nodes = in.cluster.nodes_for(in.values[k]);
          point.measurements.reserve(members);
          for (std::size_t b = 0; b < members; ++b) {
            point.measurements.push_back(std::move(measured[i][b]));
          }
          for (std::size_t b = 0; b < subs[i].size(); ++b) {
            fold_member_recorder(in.recorders[k], subs[i][b]);
          }
          results[k] = std::move(point);
          if (in.journal != nullptr) {
            in.journal->record(make_point_record(k, in.values[k], results[k],
                                                 &in.recorders[k]));
          }
        });
    for (const util::TaskGraph::NodeId member : member_ids) {
      graph.add_edge(member, join);
    }
  }
  graph.run(in.config.threads, graph_hook(in.config));
}

namespace {

/// Per-point state a robust chain threads through its nodes. The meter is
/// declared before the runner so the runner (which holds a reference to
/// it) is destroyed first.
struct RobustPointScratch {
  std::unique_ptr<power::PowerMeter> meter;
  std::unique_ptr<RobustSuiteRunner> runner;
  RobustSuitePoint out;
};

}  // namespace

void run_robust_task_graph(const TaskSweepInputs& in, const FaultPlan& plan,
                           const RobustConfig& robust,
                           std::vector<RobustSuitePoint>& results) {
  const std::vector<std::string> benches = suite_benchmarks(in.config.suite);
  const std::size_t members = benches.size();
  std::vector<RobustPointScratch> scratch(in.pending.size());
  util::TaskGraph graph;
  for (std::size_t i = 0; i < in.pending.size(); ++i) {
    const std::size_t k = in.pending[i];
    // A CHAIN, not a fan-out: the FaultyMeter stream is a serial per-point
    // resource (see RobustSuiteRunner::begin_point docs), so members run
    // in roster order on the one shared runner. The chain edges give each
    // node happens-before over its predecessor's scratch writes.
    util::TaskGraph::NodeId prev = 0;
    for (std::size_t b = 0; b < members; ++b) {
      const util::TaskGraph::NodeId id = graph.add_node(
          "point " + std::to_string(k) + " " + benches[b],
          [&in, &plan, &robust, &scratch, i, b, k] {
            RobustPointScratch& s = scratch[i];
            if (b == 0) {
              s.meter = in.point_meters(k);
              TGI_CHECK(s.meter != nullptr, "meter factory returned null");
              s.runner = std::make_unique<RobustSuiteRunner>(
                  in.cluster, *s.meter, plan, robust, in.config.suite, k);
              if (!in.recorders.empty()) {
                s.runner->attach_recorder(&in.recorders[k]);
              }
              s.runner->begin_point(s.out, in.values[k]);
            }
            s.runner->run_member(s.out, b, in.values[k]);
          });
      if (b > 0) graph.add_edge(prev, id);
      prev = id;
    }
    const util::TaskGraph::NodeId join = graph.add_node(
        "point " + std::to_string(k) + " join",
        [&in, &scratch, &results, i, k] {
          RobustPointScratch& s = scratch[i];
          s.runner->finish_point(s.out);
          results[k] = std::move(s.out);
          if (in.journal != nullptr) {
            in.journal->record(make_robust_point_record(
                k, in.values[k], results[k], &in.recorders[k]));
          }
          s.runner.reset();
          s.meter.reset();
        });
    graph.add_edge(prev, join);
  }
  graph.run(in.config.threads, graph_hook(in.config));
}

void run_point_task_graph(const ParallelSweepConfig& config,
                          const std::vector<std::size_t>& pending,
                          const std::function<void(std::size_t)>& run_point) {
  util::TaskGraph graph;
  for (std::size_t i = 0; i < pending.size(); ++i) {
    graph.add_node("point " + std::to_string(pending[i]),
                   [&run_point, i] { run_point(i); });
  }
  graph.run(config.threads, graph_hook(config));
}

}  // namespace tgi::harness
