// Green500/Top500-style ranking reports over TGI.
//
// The paper's framing problem: lists need a single rankable number. This
// module turns a set of (machine, suite measurements) pairs into a ranked
// list under any weight scheme, side by side with the FLOPS/W rank the
// Green500 would assign — the disagreement between the two columns is the
// paper's whole motivation.
#pragma once

#include <string>
#include <vector>

#include "core/tgi.h"

namespace tgi::harness {

/// One machine's suite results, as submitted to the list.
struct RankingSubmission {
  std::string machine;
  std::vector<core::BenchmarkMeasurement> measurements;
};

/// One row of the computed list.
struct RankingEntry {
  std::string machine;
  double tgi = 0.0;
  /// HPL performance / power — the Green500 column.
  double flops_per_watt = 0.0;
  std::string least_ree_benchmark;
  /// 1-based positions under each ordering.
  std::size_t tgi_rank = 0;
  std::size_t flops_per_watt_rank = 0;
};

/// A computed list.
struct Ranking {
  core::WeightScheme scheme = core::WeightScheme::kArithmeticMean;
  std::vector<RankingEntry> entries;  ///< sorted by TGI, descending

  /// Number of machines whose TGI rank differs from their FLOPS/W rank —
  /// the "what FLOPS/W hides" headline statistic.
  [[nodiscard]] std::size_t disagreements() const;
};

/// Ranks submissions by TGI against `calculator`'s reference.
/// Requires every submission to include an "HPL" measurement (for the
/// FLOPS/W column) and to cover the reference's benchmark set.
[[nodiscard]] Ranking rank_machines(
    const core::TgiCalculator& calculator,
    const std::vector<RankingSubmission>& submissions,
    core::WeightScheme scheme = core::WeightScheme::kArithmeticMean);

/// Renders the list as an aligned text table.
[[nodiscard]] std::string render_ranking(const Ranking& ranking);

}  // namespace tgi::harness
