#include "harness/ranking.h"

#include <algorithm>

#include "util/error.h"
#include "util/format.h"
#include "util/table.h"

namespace tgi::harness {

std::size_t Ranking::disagreements() const {
  std::size_t count = 0;
  for (const auto& e : entries) {
    if (e.tgi_rank != e.flops_per_watt_rank) ++count;
  }
  return count;
}

Ranking rank_machines(const core::TgiCalculator& calculator,
                      const std::vector<RankingSubmission>& submissions,
                      core::WeightScheme scheme) {
  TGI_REQUIRE(!submissions.empty(), "nothing to rank");
  Ranking ranking;
  ranking.scheme = scheme;
  ranking.entries.reserve(submissions.size());
  for (const auto& sub : submissions) {
    TGI_REQUIRE(!sub.machine.empty(), "submission without a machine name");
    const core::TgiResult result =
        calculator.compute(sub.measurements, scheme);
    const auto& hpl = core::find_measurement(sub.measurements, "HPL");
    RankingEntry entry;
    entry.machine = sub.machine;
    entry.tgi = result.tgi;
    entry.flops_per_watt = hpl.performance / hpl.average_power.value();
    entry.least_ree_benchmark = result.least_ree().benchmark;
    ranking.entries.push_back(std::move(entry));
  }

  // Assign FLOPS/W ranks first, then order the list by TGI.
  std::sort(ranking.entries.begin(), ranking.entries.end(),
            [](const RankingEntry& a, const RankingEntry& b) {
              return a.flops_per_watt > b.flops_per_watt;
            });
  for (std::size_t i = 0; i < ranking.entries.size(); ++i) {
    ranking.entries[i].flops_per_watt_rank = i + 1;
  }
  std::sort(ranking.entries.begin(), ranking.entries.end(),
            [](const RankingEntry& a, const RankingEntry& b) {
              return a.tgi > b.tgi;
            });
  for (std::size_t i = 0; i < ranking.entries.size(); ++i) {
    ranking.entries[i].tgi_rank = i + 1;
  }
  return ranking;
}

std::string render_ranking(const Ranking& ranking) {
  util::TextTable table({"rank", "machine", "TGI", "MFLOPS/W",
                         "FLOPS/W rank", "least REE"});
  for (const auto& e : ranking.entries) {
    table.add_row({std::to_string(e.tgi_rank), e.machine,
                   util::fixed(e.tgi, 4), util::fixed(e.flops_per_watt, 1),
                   std::to_string(e.flops_per_watt_rank),
                   e.least_ree_benchmark});
  }
  std::string out = "Greener500 list (";
  out += core::weight_scheme_name(ranking.scheme);
  out += ")\n";
  out += table.to_string();
  out += "rank disagreements vs FLOPS/W: " +
         std::to_string(ranking.disagreements()) + " of " +
         std::to_string(ranking.entries.size()) + "\n";
  return out;
}

}  // namespace tgi::harness
