// Deterministic parallel sweep engine.
//
// A suite sweep (Figures 5-6, Tables I-II, the ablations) is a vector of
// independent points: each builds its own simulated cluster state behind
// its own meter, mirroring the paper's repeat-per-scale procedure. That
// makes the sweep embarrassingly parallel — provided the meter's error
// draws stay reproducible when points run out of order.
//
// The determinism contract: sweep point k gets a FRESH meter constructed
// by a MeterFactory from the pair (seed, k). For the WattsUp instrument
// the factory sets WattsUpConfig::run_offset = k * measurements_per_point,
// which replays exactly the RNG streams that a single meter shared across
// a serial sweep would have used for point k. Results are collected into a
// preallocated vector BY INDEX, never by completion order. Consequence:
// the output is bit-identical for every thread count — threads=1
// reproduces today's serial execution exactly, and threads=N reproduces
// threads=1.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "harness/checkpoint.h"
#include "harness/robust.h"
#include "harness/suite.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "power/meter.h"
#include "sim/machine.h"
#include "util/units.h"

namespace tgi::harness {

/// Builds the meter for sweep point `point_index`. Must be callable
/// concurrently and must return an instrument whose error draws depend
/// only on (its own configuration, point_index) — never on call order.
using MeterFactory =
    std::function<std::unique_ptr<power::PowerMeter>(std::size_t point_index)>;

/// MeterFactory for the simulated Watts Up meter: point k's meter starts
/// its run counter at k * measurements_per_point, so the per-measurement
/// RNG streams are bit-identical to one meter of config `base` shared
/// across a serial sweep (run_suite consumes 3 + include_gups
/// measurements per point, run_extended_suite 6, run_iozone 1).
[[nodiscard]] MeterFactory wattsup_meter_factory(
    power::WattsUpConfig base, std::size_t measurements_per_point);

/// MeterFactory for the exact ModelMeter (stateless, so the point index is
/// ignored).
[[nodiscard]] MeterFactory model_meter_factory(
    util::Seconds sample_interval = util::Seconds(0.05));

/// Builds the meter for ONE measurement task: roster member `task_index`
/// of sweep point `point_index` (harness/taskgraph.h, DESIGN.md §12).
/// Same contract as MeterFactory, keyed on the pair.
using TaskMeterFactory = std::function<std::unique_ptr<power::PowerMeter>(
    std::size_t point_index, std::size_t task_index)>;

/// TaskMeterFactory for the simulated Watts Up meter: member b of point k
/// gets run_offset = base.run_offset + k * measurements_per_point + b —
/// the exact position the point-granularity meter (wattsup_meter_factory
/// with the same stride) reaches after b measurements, so a per-benchmark
/// task replays bit-identical error draws.
[[nodiscard]] TaskMeterFactory wattsup_task_meter_factory(
    power::WattsUpConfig base, std::size_t measurements_per_point);

/// TaskMeterFactory for the exact ModelMeter (stateless; both indices are
/// ignored).
[[nodiscard]] TaskMeterFactory model_task_meter_factory(
    util::Seconds sample_interval = util::Seconds(0.05));

/// The unit of work the engine schedules (DESIGN.md §12). Outputs are
/// byte-identical across granularities and thread counts; only scheduling
/// (and thus tail latency on skewed sweeps) differs.
enum class SweepGranularity {
  kPoint,  ///< classic: one task per sweep point (the §3b path)
  kTask,   ///< benchmark-level task graph with index-ordered joins (§12)
};

struct ParallelSweepConfig {
  /// Per-benchmark knobs, forwarded to every point's SuiteRunner.
  SuiteConfig suite;
  /// Worker threads; 0 = ThreadPool::default_thread_count() (the
  /// TGI_THREADS environment variable, else hardware concurrency), 1 =
  /// inline serial execution on the calling thread.
  std::size_t threads = 0;
  /// Optional wall-clock profiler (obs/profile.h): when set, every sweep
  /// point is bracketed with a wall span ("point <k>" on the worker's
  /// track). Explicitly NON-deterministic — it never feeds back into
  /// results or the deterministic trace. Must outlive the sweep calls.
  obs::WallProfiler* profiler = nullptr;
  /// Optional checkpoint journal (harness/checkpoint.h, DESIGN.md §11).
  /// When set, every completed point is journaled as it finishes, and
  /// points the journal already holds are replayed instead of recomputed —
  /// results land in the same preallocated slots, so a resumed sweep is
  /// byte-identical to an uninterrupted one at any thread count. The
  /// journal's mode must match the call (plain for run/run_extended/
  /// run_with, robust for run_robust). Must outlive the sweep calls.
  CheckpointJournal* checkpoint = nullptr;
  /// Scheduling granularity (DESIGN.md §12). kPoint is the classic
  /// one-task-per-point path; kTask decomposes each point into
  /// benchmark-level nodes on a util::TaskGraph (per-benchmark meters via
  /// `task_meters` in plain sweeps, a per-point benchmark chain in robust
  /// sweeps, whole-point nodes in run_with) with results, traces, and
  /// journal records byte-identical to kPoint at every thread count.
  SweepGranularity granularity = SweepGranularity::kPoint;
  /// Per-(point, member) meter factory enabling benchmark-level nodes in
  /// plain kTask sweeps (build with wattsup_task_meter_factory /
  /// model_task_meter_factory, same stride as the point factory). When
  /// empty, kTask plain sweeps fall back to whole-point nodes — still the
  /// graph executor, just without intra-point parallelism.
  TaskMeterFactory task_meters;
};

/// Maps sweep points to SuitePoint results concurrently; output is
/// bit-identical to the serial path for any thread count.
class ParallelSweep {
 public:
  ParallelSweep(sim::ClusterSpec cluster, MeterFactory meter_factory,
                ParallelSweepConfig config = {});

  /// The standard suite across a process-count sweep: parallel equivalent
  /// of SuiteRunner::sweep. When `trace` is non-null it receives the
  /// merged observability record (per-point recorders merged BY INDEX, so
  /// trace output is bit-identical for every thread count); tracing is
  /// observational and never changes the returned points.
  [[nodiscard]] std::vector<SuitePoint> run(
      const std::vector<std::size_t>& process_counts,
      obs::SweepTrace* trace = nullptr) const;

  /// The six-benchmark extended suite across a process-count sweep.
  [[nodiscard]] std::vector<SuitePoint> run_extended(
      const std::vector<std::size_t>& process_counts,
      obs::SweepTrace* trace = nullptr) const;

  /// Generic form: point k is produced by fn(runner_for_point_k,
  /// values[k]). Use for sweeps over something other than process counts
  /// (e.g. Figure 4's node sweep calling run_iozone).
  using SweepPointFn =
      std::function<SuitePoint(SuiteRunner& runner, std::size_t value)>;
  [[nodiscard]] std::vector<SuitePoint> run_with(
      const std::vector<std::size_t>& values, const SweepPointFn& fn,
      obs::SweepTrace* trace = nullptr) const;

  /// The standard suite sweep through the fault plane and recovery policy
  /// (harness/robust.h): point k runs on a RobustSuiteRunner whose fault
  /// and meter streams are keyed on k, so a fixed FaultPlan yields
  /// bit-identical output for every thread count. Build the meter factory
  /// with a robust_measurements_per_point(suite, robust) stride so
  /// per-point instruments stay on non-overlapping streams even when
  /// every attempt retries.
  [[nodiscard]] std::vector<RobustSuitePoint> run_robust(
      const std::vector<std::size_t>& process_counts, const FaultPlan& plan,
      const RobustConfig& robust = {},
      obs::SweepTrace* trace = nullptr) const;

  [[nodiscard]] const sim::ClusterSpec& cluster() const { return cluster_; }
  [[nodiscard]] const ParallelSweepConfig& config() const { return config_; }

 private:
  /// The granularity=kTask execution of run/run_extended: journal replay,
  /// then harness/taskgraph.h decomposition of the pending points.
  [[nodiscard]] std::vector<SuitePoint> run_suite_graph(
      const std::vector<std::size_t>& values, bool extended,
      obs::SweepTrace* trace) const;

  sim::ClusterSpec cluster_;
  MeterFactory meter_factory_;
  ParallelSweepConfig config_;
};

}  // namespace tgi::harness
