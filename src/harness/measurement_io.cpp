#include "harness/measurement_io.h"

#include <fstream>
#include <sstream>

#include "util/atomic_file.h"
#include "util/error.h"
#include "util/table.h"

namespace tgi::harness {

void write_measurements(std::ostream& out,
                        const std::vector<core::BenchmarkMeasurement>& ms) {
  util::CsvWriter csv(out);
  csv.write_row({"benchmark", "performance", "unit", "watts", "seconds",
                 "joules"});
  for (const auto& m : ms) {
    m.validate();
    std::ostringstream perf;
    std::ostringstream watts;
    std::ostringstream secs;
    std::ostringstream joules;
    perf.precision(17);
    watts.precision(17);
    secs.precision(17);
    joules.precision(17);
    perf << m.performance;
    watts << m.average_power.value();
    secs << m.execution_time.value();
    joules << m.energy.value();
    csv.write_row({m.benchmark, perf.str(), m.metric_unit, watts.str(),
                   secs.str(), joules.str()});
  }
}

void write_measurements_file(
    const std::string& path,
    const std::vector<core::BenchmarkMeasurement>& ms) {
  // Write-to-temp + rename: a crash mid-write can never leave a truncated
  // measurement CSV where a previous good one stood (DESIGN.md §11).
  util::AtomicFile out(path);
  write_measurements(out.stream(), ms);
  out.commit();
}

std::vector<std::string> split_csv_record(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char ch = line[i];
    if (in_quotes) {
      if (ch == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cell += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cell += ch;
      }
    } else if (ch == '"') {
      in_quotes = true;
    } else if (ch == ',') {
      cells.push_back(std::move(cell));
      cell.clear();
    } else if (ch != '\r') {
      cell += ch;
    }
  }
  TGI_REQUIRE(!in_quotes, "unterminated quote in CSV record: " << line);
  cells.push_back(std::move(cell));
  return cells;
}

std::vector<core::BenchmarkMeasurement> read_measurements(std::istream& in) {
  std::string line;
  TGI_REQUIRE(std::getline(in, line), "empty measurement CSV");
  {
    const auto header = split_csv_record(line);
    const std::vector<std::string> expected{"benchmark", "performance",
                                            "unit",      "watts",
                                            "seconds",   "joules"};
    TGI_REQUIRE(header == expected,
                "unexpected CSV header (want '" << kMeasurementCsvHeader
                                                << "')");
  }
  std::vector<core::BenchmarkMeasurement> out;
  int row = 1;
  auto parse_double = [&](const std::string& cell, const char* what) {
    try {
      std::size_t pos = 0;
      const double v = std::stod(cell, &pos);
      TGI_REQUIRE(pos == cell.size(), "trailing characters");
      return v;
    } catch (const std::exception&) {
      throw util::PreconditionError("row " + std::to_string(row) +
                                    ": bad " + what + " value '" + cell +
                                    "'");
    }
  };
  while (std::getline(in, line)) {
    ++row;
    if (line.empty()) continue;
    const auto cells = split_csv_record(line);
    TGI_REQUIRE(cells.size() == 6,
                "row " << row << " has " << cells.size()
                       << " cells, expected 6");
    core::BenchmarkMeasurement m;
    m.benchmark = cells[0];
    m.performance = parse_double(cells[1], "performance");
    m.metric_unit = cells[2];
    m.average_power = util::watts(parse_double(cells[3], "watts"));
    m.execution_time = util::seconds(parse_double(cells[4], "seconds"));
    m.energy = util::joules(parse_double(cells[5], "joules"));
    m.validate();
    out.push_back(std::move(m));
  }
  TGI_REQUIRE(!out.empty(), "measurement CSV has no data rows");
  return out;
}

std::vector<core::BenchmarkMeasurement> read_measurements_file(
    const std::string& path) {
  std::ifstream in(path);
  TGI_REQUIRE(in.good(), "cannot open '" << path << "' for reading");
  return read_measurements(in);
}

}  // namespace tgi::harness
