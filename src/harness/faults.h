// Deterministic fault injection for the measurement pipeline.
//
// The paper's methodology assumes every measurement succeeds; its own
// instrument does not. The Watts Up? PRO ES drops serial-link samples,
// readings stick, gains spike, and whole benchmark runs fail or stall on
// production systems (the CEEC experience report in PAPERS.md treats flaky
// power telemetry as the norm). This module injects those failures *on
// purpose* so the recovery layer (harness/robust.h) has something real to
// absorb — and so tests can pin the degraded paths bit-exactly.
//
// Determinism contract (same style as WattsUpConfig::run_offset): every
// fault decision is a pure function of (FaultSpec::seed, an index) — a
// fresh util::Xoshiro256 is derived per decision, never shared — so plans
// are safe to consult from any thread in any order, and a sweep with a
// fixed FaultPlan is bit-identical at threads=1 and threads=8.
#pragma once

#include <cstdint>
#include <string>

#include "power/meter.h"
#include "power/trace.h"
#include "util/units.h"

namespace tgi::harness {

/// What can go wrong with one meter measurement.
enum class MeterFaultKind {
  kNone,
  kDropoutBurst,  ///< a contiguous window of interior samples is lost
  kStuckAt,       ///< the reading freezes at the window-entry value
  kGainSpike,     ///< samples in a window are scaled by a rogue gain
};

/// What can go wrong with one benchmark run attempt.
enum class RunFaultKind {
  kNone,
  kBenchmarkFailure,  ///< the run dies before producing a measurement
  kTimeout,           ///< the run stalls and is killed after a deadline
  kTruncatedTrace,    ///< the run finishes but the power log stops early
};

[[nodiscard]] const char* meter_fault_name(MeterFaultKind kind);
[[nodiscard]] const char* run_fault_name(RunFaultKind kind);

/// Fault rates and shape parameters. Rates are probabilities per
/// measurement (meter faults) or per run attempt (run faults); the three
/// rates in each group must sum to <= 1.
struct FaultSpec {
  /// P(a measurement suffers a dropout burst).
  double dropout_burst_rate = 0.0;
  /// P(a measurement has a stuck-at window).
  double stuck_rate = 0.0;
  /// P(a measurement has a gain-spike window).
  double spike_rate = 0.0;
  /// P(a run attempt fails outright).
  double failure_rate = 0.0;
  /// P(a run attempt stalls until the watchdog kills it).
  double timeout_rate = 0.0;
  /// P(a run attempt's power log is truncated).
  double truncation_rate = 0.0;
  /// Fault-window length as a fraction of the trace (bursts, stuck, spike).
  double window_fraction = 0.2;
  /// Rogue gain drawn uniformly in [1/spike_gain_max, spike_gain_max]
  /// excluding the neighbourhood of 1 — spikes go up or down.
  double spike_gain_max = 3.0;
  /// Tail fraction of the trace lost when a run's log is truncated.
  double truncation_fraction = 0.35;
  /// Seed for all fault decision streams.
  std::uint64_t seed = 0xfa017fa017fa017fULL;

  /// True when any fault rate is nonzero.
  [[nodiscard]] bool enabled() const;
  /// Throws PreconditionError unless rates/fractions are well-formed.
  void validate() const;
};

/// Parses "key=value,key=value" fault specs for the --faults CLI knob,
/// e.g. "dropout=0.2,stuck=0.1,failure=0.05,seed=7". Keys: dropout,
/// stuck, spike, failure, timeout, truncation, window, gain, tail, seed.
/// Throws PreconditionError on unknown keys or malformed values.
[[nodiscard]] FaultSpec parse_fault_spec(const std::string& text);

/// One-line human-readable summary ("dropout=0.2 stuck=0.1 seed=7").
[[nodiscard]] std::string fault_spec_summary(const FaultSpec& spec);

/// A concrete meter fault: kind plus its drawn window/gain parameters
/// (fractions of the measured trace, so one decision applies to any
/// duration).
struct MeterFault {
  MeterFaultKind kind = MeterFaultKind::kNone;
  double window_start = 0.0;   ///< in [0, 1 - window_length]
  double window_length = 0.0;  ///< in (0, 1)
  double gain = 1.0;           ///< kGainSpike only
};

/// A concrete run fault.
struct RunFault {
  RunFaultKind kind = RunFaultKind::kNone;
};

/// The deterministic fault schedule. Stateless and cheap to copy; every
/// decision derives a fresh RNG from (seed, indices), so calls are
/// thread-safe and order-independent by construction.
class FaultPlan {
 public:
  explicit FaultPlan(FaultSpec spec = {});

  [[nodiscard]] const FaultSpec& spec() const { return spec_; }
  [[nodiscard]] bool enabled() const { return spec_.enabled(); }

  /// The fault (if any) afflicting global measurement `measurement_index`.
  [[nodiscard]] MeterFault meter_fault(std::uint64_t measurement_index) const;

  /// The fault (if any) afflicting attempt `attempt` of benchmark
  /// `benchmark_index` at sweep point `point_index`.
  [[nodiscard]] RunFault run_fault(std::uint64_t point_index,
                                   std::uint64_t benchmark_index,
                                   std::uint64_t attempt) const;

 private:
  FaultSpec spec_;
};

/// Applies `fault` to a trace (pure; exposed for tests). Dropout bursts
/// never remove the first or last sample, so the trace still spans the
/// run; the result always keeps >= 2 samples.
[[nodiscard]] power::PowerTrace apply_meter_fault(
    const power::PowerTrace& trace, const MeterFault& fault);

/// Drops the trailing `tail_fraction` of a trace's time span (the power
/// log stopped early). Keeps >= 2 samples.
[[nodiscard]] power::PowerTrace truncate_trace(const power::PowerTrace& trace,
                                               double tail_fraction);

/// Decorator that injects meter faults into any PowerMeter's readings.
///
/// Like WattsUpMeter, the decorator keys each measurement's fault decision
/// off an internal counter starting at `measurement_offset`, so a fresh
/// decorator at offset k behaves exactly like one that already performed k
/// measurements — the property ParallelSweep's per-point meters rely on.
class FaultyMeter final : public power::PowerMeter {
 public:
  /// `inner` must outlive the decorator.
  FaultyMeter(power::PowerMeter& inner, FaultPlan plan,
              std::uint64_t measurement_offset = 0);

  [[nodiscard]] power::MeterReading measure(const power::PowerSource& source,
                                            util::Seconds duration) override;
  [[nodiscard]] std::string name() const override;

  /// Forces the NEXT measurement's trace to lose its trailing
  /// `tail_fraction` (the run-level kTruncatedTrace fault; one-shot).
  void arm_truncation(double tail_fraction);

  /// Clears any armed truncation. Callers that arm per attempt MUST
  /// disarm before the next attempt: if the measurement that was meant to
  /// consume the truncation never happens (the inner meter threw, or the
  /// attempt died before metering), the stale charge would otherwise fire
  /// on an unrelated later measurement.
  void disarm_truncation() { armed_truncation_ = 0.0; }

  /// True while a truncation is armed but not yet consumed.
  [[nodiscard]] bool truncation_armed() const {
    return armed_truncation_ > 0.0;
  }

  /// Meter faults actually applied so far (kNone decisions not counted).
  [[nodiscard]] std::size_t faults_applied() const { return faults_applied_; }

 private:
  power::PowerMeter& inner_;
  FaultPlan plan_;
  std::uint64_t counter_ = 0;
  double armed_truncation_ = 0.0;
  std::size_t faults_applied_ = 0;
};

}  // namespace tgi::harness
