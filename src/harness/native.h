// Native suite: run the REAL benchmark kernels on the local machine and
// package them as TGI measurements.
//
// This is the first-class version of what a user without a cluster does:
// the 2D block-cyclic HPL executes actual factorizations over mpisim
// ranks, STREAM streams host DRAM, IOzone exercises the simulated
// filesystem — all verified (residuals, closed-form checks, read-back) —
// and power comes from a node model at stated utilization profiles, since
// laptops rarely ship with plug meters.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/measurement.h"
#include "power/node_model.h"

namespace tgi::harness {

/// Knobs for the host-scale run.
struct NativeSuiteConfig {
  /// HPL problem order and blocking (2D grid is chosen from `ranks`).
  std::size_t hpl_n = 384;
  std::size_t hpl_block = 48;
  /// mpisim ranks for HPL (factored into the squarest grid).
  int ranks = 4;
  /// STREAM array elements and repetitions.
  std::size_t stream_elements = 2'000'000;
  int stream_iterations = 3;
  int stream_threads = 2;
  /// IOzone file/record sizes (runs against the simulated filesystem).
  util::ByteCount iozone_file{util::mebibytes(64.0)};
  util::ByteCount iozone_record{util::kibibytes(128.0)};
  /// Include a GUPS measurement (fourth benchmark).
  bool include_gups = false;
  unsigned gups_log2_table = 20;
  std::uint64_t seed = 2026;
};

/// The squarest P×Q factorization of `ranks` (P <= Q). Exposed for tests.
[[nodiscard]] std::pair<int, int> squarest_grid(int ranks);

/// Runs the suite; throws if any kernel fails its own verification.
/// `node_power` models the machine the kernels ran on.
[[nodiscard]] std::vector<core::BenchmarkMeasurement> run_native_suite(
    const NativeSuiteConfig& config,
    const power::NodePowerModel& node_power);

}  // namespace tgi::harness
