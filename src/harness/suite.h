// Suite orchestration: run {HPL, STREAM, IOzone} on a simulated cluster
// behind a power meter and produce the measurement tuples TGI consumes.
//
// This is the software analogue of the paper's experimental procedure:
// plug the cluster into the Watts Up meter (Figure 1), run each benchmark
// at a given scale, record performance and the meter's (power, energy),
// repeat across the core-count sweep.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/measurement.h"
#include "kernels/extended_models.h"
#include "kernels/gups_model.h"
#include "kernels/hpl_model.h"
#include "kernels/iozone_model.h"
#include "kernels/stream_model.h"
#include "obs/trace.h"
#include "power/meter.h"
#include "sim/simulator.h"

namespace tgi::harness {

/// Benchmark parameters for a suite run (process count is supplied per
/// call; these are the per-benchmark knobs).
struct SuiteConfig {
  kernels::HplModelParams hpl;
  kernels::StreamModelParams stream;
  kernels::IozoneModelParams iozone;
  kernels::GupsModelParams gups;
  kernels::PtransModelParams ptrans;
  kernels::FftModelParams fft;
  /// Add RandomAccess (GUPS) as a fourth suite member — the paper's
  /// "TGI is not limited by the number of benchmarks" claim in action
  /// (see bench/ablation_suite_size).
  bool include_gups = false;
  sim::SimTuning tuning;
  /// Node count for the reference system's IOzone measurement. The paper's
  /// Table I reference power for IOzone (1.52 kW — a metered subset, not
  /// all 128 nodes at ~30 kW) shows the reference I/O test ran on a slice.
  std::size_t reference_iozone_nodes = 8;
};

/// One sweep point: the suite measured at a given scale.
struct SuitePoint {
  std::size_t processes = 0;
  std::size_t nodes = 0;
  std::vector<core::BenchmarkMeasurement> measurements;
};

/// The ordered roster of the paper suite for `config` — the ONE
/// enumeration that SuiteRunner::run_suite execution order,
/// RobustSuiteRunner's retry loop, robust_measurements_per_point's meter
/// stride, and the bench harnesses' measurements-per-point all derive
/// from, so they cannot drift apart when the suite grows a member.
[[nodiscard]] std::vector<std::string> suite_benchmarks(
    const SuiteConfig& config);

/// The ordered roster of the six-benchmark extended suite (paper trio +
/// GUPS + PTRANS + FFT) — the enumeration SuiteRunner::run_extended_suite
/// executes and the task-graph decomposition (harness/taskgraph.h)
/// mirrors, member for member.
[[nodiscard]] std::vector<std::string> extended_suite_benchmarks();

/// Runs the benchmark suite on a simulated cluster through a power meter.
class SuiteRunner {
 public:
  /// `meter` must outlive the runner.
  SuiteRunner(sim::ClusterSpec cluster, power::PowerMeter& meter,
              SuiteConfig config = {});

  /// HPL at `processes` ranks; performance in MFLOPS.
  [[nodiscard]] core::BenchmarkMeasurement run_hpl(std::size_t processes);

  /// STREAM Triad at `processes` ranks; performance in MB/s (1e6).
  [[nodiscard]] core::BenchmarkMeasurement run_stream(std::size_t processes);

  /// IOzone write test on `nodes` nodes; performance in MB/s (1e6).
  [[nodiscard]] core::BenchmarkMeasurement run_iozone(std::size_t nodes);

  /// RandomAccess at `processes` ranks; performance in GUPS.
  [[nodiscard]] core::BenchmarkMeasurement run_gups(std::size_t processes);

  /// PTRANS at `processes` ranks; performance in MB/s of matrix moved.
  [[nodiscard]] core::BenchmarkMeasurement run_ptrans(std::size_t processes);

  /// Distributed FFT at `processes` ranks; performance in MFLOPS.
  [[nodiscard]] core::BenchmarkMeasurement run_fft(std::size_t processes);

  /// Runs the suite member named in suite_benchmarks() or
  /// extended_suite_benchmarks() ("HPL", "STREAM", "IOzone", "GUPS",
  /// "PTRANS", "FFT") at `processes` ranks; IOzone uses the nodes hosting
  /// the ranks. Throws PreconditionError for unknown names.
  [[nodiscard]] core::BenchmarkMeasurement run_benchmark(
      const std::string& name, std::size_t processes);

  /// The six-benchmark HPCC-flavored suite (paper trio + GUPS + PTRANS +
  /// FFT) at one scale.
  [[nodiscard]] SuitePoint run_extended_suite(std::size_t processes);

  /// The full suite at one scale (IOzone uses the nodes hosting the ranks).
  [[nodiscard]] SuitePoint run_suite(std::size_t processes);

  /// The suite across a process-count sweep (the paper's Figures 5-6 grid).
  [[nodiscard]] std::vector<SuitePoint> sweep(
      const std::vector<std::size_t>& process_counts);

  [[nodiscard]] const sim::ClusterSpec& cluster() const {
    return simulator_.cluster();
  }

  /// Attaches (or detaches, with nullptr) a trace recorder: every
  /// subsequent benchmark run records a span on the recorder's simulated
  /// timeline and advances its clock by the run's elapsed time. Purely
  /// observational — attaching a recorder never changes a measurement.
  /// The recorder must outlive the runner (or be detached first).
  void attach_recorder(obs::PointRecorder* recorder) { recorder_ = recorder; }

 private:
  [[nodiscard]] core::BenchmarkMeasurement measure(
      const sim::Workload& workload, double performance,
      const std::string& unit, const sim::SimulatedRun& run);

  sim::ExecutionSimulator simulator_;
  power::PowerMeter& meter_;
  SuiteConfig config_;
  obs::PointRecorder* recorder_ = nullptr;
};

/// Reference measurements: the full suite at the reference cluster's full
/// scale — what SystemG provides in the paper (Table I). When `recorder`
/// is non-null the run records benchmark spans on it (observational, never
/// changes a measurement) — the campaign engine journals reference runs
/// into its result cache, and journal records carry the observability
/// section (DESIGN.md §11, §13).
[[nodiscard]] std::vector<core::BenchmarkMeasurement> reference_measurements(
    const sim::ClusterSpec& reference_cluster, power::PowerMeter& meter,
    SuiteConfig config = {}, obs::PointRecorder* recorder = nullptr);

}  // namespace tgi::harness
