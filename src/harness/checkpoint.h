// Crash-tolerant sweeps: a deterministic checkpoint/resume journal.
//
// The paper's methodology is a long measurement campaign — every suite
// benchmark, metered, at every scale — and the sweep engine multiplies it
// across dozens of points. A crash used to throw away every completed
// point. This module gives `ParallelSweep` an append-only, checksummed
// journal: one record per completed sweep point, written through a flushed
// append (the one output in this repo that cannot use temp+rename, because
// it must survive a SIGKILL *mid-sweep*, not just mid-write). On resume the
// journal is validated, completed points are replayed, and only the missing
// ones are recomputed — with the exact per-point RNG offsets the
// determinism contract (DESIGN.md §3b) already keys on the point index, so
// a killed-and-resumed sweep is byte-identical to an uninterrupted one at
// any thread count.
//
// Journal format (DESIGN.md §11): one record per line,
//
//   TGIJ1 <kind> <crc32-hex8> <payload>\n
//
// where <kind> is `header` or `point`, the CRC-32 (util/atomic_file.h)
// covers "<kind> <payload>", and the payload is `name=value` fields joined
// by US (0x1f). Values are percent-escaped (%, LF, CR, RS, US), so a
// record is always exactly one line; nested lists (trace events, metrics)
// join their escaped elements with RS (0x1e) before the field-level escape.
// Doubles that must round-trip bit-exactly ride either the measurement_io
// interchange CSV (17 significant digits) or C hexfloats.
//
// Trust policy: a record is either fully valid — magic, CRC, schema, and
// every embedded measurement re-validated — or it is quarantined with a
// logged reason and its point recomputed. A torn tail (SIGKILL mid-append
// leaves no trailing newline), a flipped bit, a duplicated or reordered
// record: none of them can silently corrupt a resumed figure. A journal
// whose header does not match the current run's spec hash throws —
// resuming under a different spec is a caller error, not damage.
#pragma once

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "harness/robust.h"
#include "harness/suite.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/units.h"

namespace tgi::harness {

/// FNV-1a 64-bit hash of a canonical spec string — the journal's guard
/// against resuming a sweep under a different cluster/seed/fault/suite
/// configuration. Callers build the canonical string from every input that
/// feeds the sweep's results (see tgi_sweep).
[[nodiscard]] std::uint64_t journal_spec_hash(std::string_view canonical_spec);

/// One quarantined journal line and why it was rejected.
struct JournalDamage {
  std::size_t line = 0;  ///< 1-based line number in the journal
  std::string reason;
};

/// One completed sweep point as journaled: enough to replay the point —
/// results, robust accounting, and the observability record — without
/// re-running it.
struct PointRecord {
  std::size_t index = 0;  ///< sweep point index (the RNG stream key)
  std::size_t value = 0;  ///< sweep value at that index (cross-check)
  SuitePoint point;       ///< processes, nodes, surviving measurements
  bool robust = false;
  std::vector<std::string> missing;  ///< robust only: dropped benchmarks
  PointCounters counters;            ///< robust only: recovery accounting
  bool traced = false;
  util::Seconds trace_now{0.0};  ///< recorder clock at point completion
  std::vector<obs::TraceEvent> events;
  std::vector<obs::Metric> trace_metrics;
};

/// Structural parse of a whole journal: the first valid header, every
/// structurally valid point record in file order (duplicates included),
/// and one JournalDamage entry per rejected line.
struct JournalContents {
  bool header_valid = false;
  std::uint64_t spec_hash = 0;
  std::string mode;  ///< "plain" | "robust"
  std::vector<std::size_t> values;
  std::vector<PointRecord> points;
  std::vector<std::size_t> point_lines;  ///< 1-based line of each point
  std::vector<JournalDamage> damage;
};

/// Serializes the header / a point record as one journal line (with the
/// trailing newline). Exposed for tests.
[[nodiscard]] std::string encode_header_record(
    std::uint64_t spec_hash, const std::string& mode,
    const std::vector<std::size_t>& values);
[[nodiscard]] std::string encode_point_record(const PointRecord& record);

/// Parses journal text. Never throws on damaged input: every rejected line
/// becomes a JournalDamage entry (checksum mismatch, torn tail, bad
/// schema, measurement rows that fail validation, ...). Exposed for the
/// corruption fuzz tests.
[[nodiscard]] JournalContents read_journal(const std::string& text);
[[nodiscard]] JournalContents read_journal_file(const std::string& path);

/// The semantic view of a parsed journal against the CURRENT run: the
/// deduplicated completed points (first valid record per index wins) plus
/// structural and semantic damage. Throws TgiError when the journal's
/// valid header disagrees with the current spec hash, mode, or sweep
/// values — that is a caller error, not quarantine. A missing or damaged
/// header quarantines the whole journal (every point recomputed).
struct JournalState {
  std::map<std::size_t, PointRecord> completed;
  std::vector<JournalDamage> damage;
  bool header_valid = false;
};
[[nodiscard]] JournalState reconcile_journal(
    const JournalContents& contents, std::uint64_t spec_hash,
    const std::string& mode, const std::vector<std::size_t>& values);

/// Builds the journal record for a freshly computed point. `recorder` may
/// be null (untraced sweep).
[[nodiscard]] PointRecord make_point_record(std::size_t index,
                                            std::size_t value,
                                            const SuitePoint& point,
                                            const obs::PointRecorder* recorder);
[[nodiscard]] PointRecord make_robust_point_record(
    std::size_t index, std::size_t value, const RobustSuitePoint& point,
    const obs::PointRecorder* recorder);

/// Replays a record's observability section into a fresh recorder: events
/// verbatim, metrics by kind, clock to the journaled value — so a resumed
/// trace merges byte-identically to the uninterrupted one. Requires
/// record.traced.
void restore_recorder(const PointRecord& record, obs::PointRecorder& recorder);

struct CheckpointConfig {
  std::string directory;  ///< journal lives at <directory>/journal.tgij
  bool resume = false;    ///< load completed points instead of starting over
};

/// The sweep engine's journal handle (ParallelSweepConfig::checkpoint).
///
/// Fresh mode truncates the journal and writes the header; resume mode
/// loads it (logging every quarantined record at WARN), then compacts it
/// atomically — header plus the surviving records in index order — so
/// accumulated damage and duplicates heal on every resume. `record` is
/// thread-safe: workers append-and-flush one complete line per finished
/// point, which a SIGKILL can only ever tear at the tail, where the
/// checksum catches it.
class CheckpointJournal {
 public:
  /// `mode` is "plain" (run/run_extended/run_with) or "robust"
  /// (run_robust); it is stamped into the header and must match on resume.
  CheckpointJournal(CheckpointConfig config, std::uint64_t spec_hash,
                    std::string mode, std::vector<std::size_t> values);

  [[nodiscard]] const std::string& journal_path() const {
    return journal_path_;
  }
  [[nodiscard]] const std::string& mode() const { return mode_; }
  [[nodiscard]] bool resuming() const { return config_.resume; }
  [[nodiscard]] const std::vector<std::size_t>& values() const {
    return values_;
  }

  /// Completed points loaded from the journal on resume.
  [[nodiscard]] std::size_t completed_count() const {
    return completed_.size();
  }
  [[nodiscard]] bool is_complete(std::size_t index) const;
  [[nodiscard]] const PointRecord& completed(std::size_t index) const;

  /// Quarantined records (structural + semantic), already logged at WARN.
  [[nodiscard]] const std::vector<JournalDamage>& damage() const {
    return damage_;
  }

  /// Appends one completed point and flushes. Thread-safe.
  void record(const PointRecord& record);

  /// Notes that point `index` was replayed from the journal; finalize()
  /// turns these into `point_resumed` trace events. Thread-safe.
  void note_resumed(std::size_t index, std::size_t value);

  /// Called by the sweep engine after the sweep completes. On resume,
  /// writes <directory>/resume.json — a Chrome-trace record (src/obs) with
  /// one `point_resumed` instant per replayed point. Deliberately a
  /// SEPARATE file: trace.json must stay byte-identical to an
  /// uninterrupted run, and which points resumed depends on where the
  /// previous run died.
  void finalize();

 private:
  CheckpointConfig config_;
  std::uint64_t spec_hash_ = 0;
  std::string mode_;
  std::vector<std::size_t> values_;
  std::string journal_path_;
  std::map<std::size_t, PointRecord> completed_;
  std::vector<JournalDamage> damage_;
  std::map<std::size_t, std::size_t> resumed_;  // index -> sweep value
  std::mutex mu_;
  // Append-mode on purpose: per-record CRCs replace rename atomicity so a
  // crash can only tear the final record, never the published prefix.
  std::ofstream out_;  // tgi-lint: allow(nonatomic-output-write)
};

}  // namespace tgi::harness
