// Ordinary least-squares linear regression.
//
// Used by the harness's shape checks: "EE of HPL rises with process count"
// and "EE of IOzone falls with node count" are asserted as the sign of the
// fitted slope, which is far more robust than comparing adjacent points on
// a noisy (metered) series.
#pragma once

#include <span>

namespace tgi::stats {

/// Result of fitting y ≈ slope·x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  /// Coefficient of determination in [0, 1].
  double r_squared = 0.0;
};

/// Least-squares fit. Precondition: equal sizes, n >= 2, x non-constant.
[[nodiscard]] LinearFit linear_fit(std::span<const double> xs,
                                   std::span<const double> ys);

/// True if ys is non-strictly increasing.
[[nodiscard]] bool is_non_decreasing(std::span<const double> ys);

/// True if ys is non-strictly decreasing.
[[nodiscard]] bool is_non_increasing(std::span<const double> ys);

}  // namespace tgi::stats
