#include "stats/regression.h"

#include "stats/descriptive.h"
#include "util/error.h"

namespace tgi::stats {

LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys) {
  TGI_REQUIRE(xs.size() == ys.size(), "series sizes differ");
  TGI_REQUIRE(xs.size() >= 2, "fit needs >= 2 points");
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  TGI_REQUIRE(sxx > 0.0, "fit undefined for constant x");
  LinearFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = (syy == 0.0) ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

bool is_non_decreasing(std::span<const double> ys) {
  for (std::size_t i = 1; i < ys.size(); ++i) {
    if (ys[i] < ys[i - 1]) return false;
  }
  return true;
}

bool is_non_increasing(std::span<const double> ys) {
  for (std::size_t i = 1; i < ys.size(); ++i) {
    if (ys[i] > ys[i - 1]) return false;
  }
  return true;
}

}  // namespace tgi::stats
