#include "stats/bootstrap.h"

#include <algorithm>
#include <vector>

#include "stats/correlation.h"
#include "stats/descriptive.h"
#include "util/error.h"
#include "util/rng.h"

namespace tgi::stats {

BootstrapInterval bootstrap_paired_ci(std::span<const double> xs,
                                      std::span<const double> ys,
                                      const PairedStatistic& statistic,
                                      std::size_t resamples,
                                      double confidence,
                                      std::uint64_t seed) {
  TGI_REQUIRE(xs.size() == ys.size(), "paired sample size mismatch");
  TGI_REQUIRE(xs.size() >= 3, "bootstrap needs >= 3 pairs");
  TGI_REQUIRE(resamples >= 10, "need >= 10 resamples");
  TGI_REQUIRE(confidence > 0.0 && confidence < 1.0,
              "confidence must be in (0, 1)");

  BootstrapInterval out;
  out.point = statistic(xs, ys);

  util::Xoshiro256 rng(seed);
  std::vector<double> rx(xs.size());
  std::vector<double> ry(ys.size());
  std::vector<double> stats;
  stats.reserve(resamples);
  // Degenerate resamples (all pairs identical -> Pearson undefined) are
  // redrawn; the retry budget bounds pathological inputs.
  std::size_t retries_left = resamples * 20;
  while (stats.size() < resamples) {
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const std::uint64_t j = rng.uniform_index(xs.size());
      rx[i] = xs[j];
      ry[i] = ys[j];
    }
    try {
      stats.push_back(statistic(rx, ry));
    } catch (const util::TgiError&) {
      TGI_REQUIRE(retries_left-- > 0,
                  "bootstrap exhausted retries on degenerate resamples");
    }
  }

  const double alpha = (1.0 - confidence) / 2.0;
  out.lo = percentile(stats, alpha);
  out.hi = percentile(stats, 1.0 - alpha);
  return out;
}

BootstrapInterval pearson_bootstrap_ci(std::span<const double> xs,
                                       std::span<const double> ys,
                                       std::size_t resamples,
                                       double confidence,
                                       std::uint64_t seed) {
  return bootstrap_paired_ci(
      xs, ys,
      [](std::span<const double> a, std::span<const double> b) {
        return pearson(a, b);
      },
      resamples, confidence, seed);
}

}  // namespace tgi::stats
