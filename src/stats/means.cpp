#include "stats/means.h"

#include <cmath>

#include "stats/descriptive.h"
#include "util/error.h"

namespace tgi::stats {

namespace {
void require_matched(std::span<const double> xs,
                     std::span<const double> weights) {
  TGI_REQUIRE(!xs.empty(), "mean of empty data");
  TGI_REQUIRE(xs.size() == weights.size(),
              "data size " << xs.size() << " != weight size "
                           << weights.size());
  TGI_REQUIRE(weights_valid(weights),
              "weights must be non-negative and sum to 1");
}
}  // namespace

double arithmetic_mean(std::span<const double> xs) { return mean(xs); }

double geometric_mean(std::span<const double> xs) {
  TGI_REQUIRE(!xs.empty(), "geometric mean of empty data");
  double log_acc = 0.0;
  for (double x : xs) {
    TGI_REQUIRE(x > 0.0, "geometric mean requires positive data, got " << x);
    log_acc += std::log(x);
  }
  return std::exp(log_acc / static_cast<double>(xs.size()));
}

double harmonic_mean(std::span<const double> xs) {
  TGI_REQUIRE(!xs.empty(), "harmonic mean of empty data");
  double inv_acc = 0.0;
  for (double x : xs) {
    TGI_REQUIRE(x > 0.0, "harmonic mean requires positive data, got " << x);
    inv_acc += 1.0 / x;
  }
  return static_cast<double>(xs.size()) / inv_acc;
}

double weighted_arithmetic_mean(std::span<const double> xs,
                                std::span<const double> weights) {
  require_matched(xs, weights);
  double acc = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) acc += weights[i] * xs[i];
  return acc;
}

double weighted_harmonic_mean(std::span<const double> xs,
                              std::span<const double> weights) {
  require_matched(xs, weights);
  double acc = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    TGI_REQUIRE(xs[i] > 0.0, "harmonic mean requires positive data");
    acc += weights[i] / xs[i];
  }
  return 1.0 / acc;
}

double weighted_geometric_mean(std::span<const double> xs,
                               std::span<const double> weights) {
  require_matched(xs, weights);
  double log_acc = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    TGI_REQUIRE(xs[i] > 0.0, "geometric mean requires positive data");
    log_acc += weights[i] * std::log(xs[i]);
  }
  return std::exp(log_acc);
}

std::vector<double> proportional_weights(std::span<const double> raw) {
  TGI_REQUIRE(!raw.empty(), "weights from empty data");
  double total = 0.0;
  for (double r : raw) {
    TGI_REQUIRE(r >= 0.0, "proportional weight source must be >= 0, got "
                              << r);
    total += r;
  }
  TGI_REQUIRE(total > 0.0, "proportional weight sources sum to zero");
  std::vector<double> out;
  out.reserve(raw.size());
  for (double r : raw) out.push_back(r / total);
  return out;
}

std::vector<double> equal_weights(std::size_t n) {
  TGI_REQUIRE(n > 0, "equal_weights(0)");
  return std::vector<double>(n, 1.0 / static_cast<double>(n));
}

bool weights_valid(std::span<const double> weights, double tol) {
  if (weights.empty()) return false;
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0 || !std::isfinite(w)) return false;
    total += w;
  }
  return std::fabs(total - 1.0) <= tol;
}

}  // namespace tgi::stats
