// Central-tendency measures and weight construction.
//
// Section III of the paper builds TGI from means: the plain arithmetic mean
// (Eq. 6-8) and weighted arithmetic means with time/energy/power weights
// (Eqs. 9-15). This module provides those means plus the geometric and
// harmonic alternatives discussed in the related work (Smith '88, John '04),
// and the weight constructors shared by tgi::core.
#pragma once

#include <span>
#include <vector>

namespace tgi::stats {

/// Arithmetic mean of xs. Precondition: non-empty.
[[nodiscard]] double arithmetic_mean(std::span<const double> xs);

/// Geometric mean. Precondition: non-empty, all xs > 0.
[[nodiscard]] double geometric_mean(std::span<const double> xs);

/// Harmonic mean. Precondition: non-empty, all xs > 0.
[[nodiscard]] double harmonic_mean(std::span<const double> xs);

/// Weighted arithmetic mean Σ w_i x_i (Eq. 9). Preconditions: equal sizes,
/// non-empty, weights non-negative and summing to 1 within tolerance.
[[nodiscard]] double weighted_arithmetic_mean(std::span<const double> xs,
                                              std::span<const double> weights);

/// Weighted harmonic mean 1 / Σ (w_i / x_i). Same preconditions, xs > 0.
[[nodiscard]] double weighted_harmonic_mean(std::span<const double> xs,
                                            std::span<const double> weights);

/// Weighted geometric mean Π x_i^{w_i}. Same preconditions, xs > 0.
[[nodiscard]] double weighted_geometric_mean(std::span<const double> xs,
                                             std::span<const double> weights);

/// Normalizes non-negative `raw` values so they sum to 1 — the construction
/// behind W_t, W_e and W_p (Eqs. 10-12): weight_i = raw_i / Σ raw_j.
/// Precondition: non-empty, all raw >= 0, sum > 0.
[[nodiscard]] std::vector<double> proportional_weights(
    std::span<const double> raw);

/// Returns a vector of n equal weights 1/n. Precondition: n > 0.
[[nodiscard]] std::vector<double> equal_weights(std::size_t n);

/// True when weights are non-negative and sum to 1 within `tol`.
[[nodiscard]] bool weights_valid(std::span<const double> weights,
                                 double tol = 1e-9);

}  // namespace tgi::stats
