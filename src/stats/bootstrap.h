// Percentile-bootstrap confidence intervals for paired statistics.
//
// The paper reports Table II's Pearson coefficients as bare numbers over
// an 8-point sweep — tiny samples where r is a noisy estimator. The bench
// harness attaches bootstrap CIs so readers can see which correlation
// orderings are resolvable and which are within noise.
#pragma once

#include <cstdint>
#include <functional>
#include <span>

namespace tgi::stats {

/// A two-sided percentile interval around a point estimate.
struct BootstrapInterval {
  double point = 0.0;
  double lo = 0.0;
  double hi = 0.0;
};

/// Statistic over a paired sample.
using PairedStatistic =
    std::function<double(std::span<const double>, std::span<const double>)>;

/// Percentile bootstrap for `statistic` over paired (xs, ys): resamples
/// pairs with replacement `resamples` times and returns the
/// [(1-confidence)/2, 1-(1-confidence)/2] percentile interval.
/// Degenerate resamples (where the statistic throws, e.g. a constant
/// series under Pearson) are redrawn, up to a bounded retry budget.
/// Preconditions: xs.size() == ys.size() >= 3; 0 < confidence < 1.
[[nodiscard]] BootstrapInterval bootstrap_paired_ci(
    std::span<const double> xs, std::span<const double> ys,
    const PairedStatistic& statistic, std::size_t resamples = 2000,
    double confidence = 0.95, std::uint64_t seed = 0xb007);

/// Convenience wrapper: bootstrap CI for the Pearson coefficient.
[[nodiscard]] BootstrapInterval pearson_bootstrap_ci(
    std::span<const double> xs, std::span<const double> ys,
    std::size_t resamples = 2000, double confidence = 0.95,
    std::uint64_t seed = 0xb007);

}  // namespace tgi::stats
