// Correlation measures.
//
// The paper's Table II validates TGI by computing the Pearson correlation
// coefficient (Eq. 17) between each benchmark's energy-efficiency curve and
// the TGI curve across the core-count sweep. Spearman rank correlation is
// provided as a robustness check (an extension; monotone association is
// really what the paper's "TGI follows IOzone's trend" argument needs).
#pragma once

#include <span>

namespace tgi::stats {

/// Sample covariance (divides by n-1). Precondition: equal sizes, n >= 2.
[[nodiscard]] double covariance_sample(std::span<const double> xs,
                                       std::span<const double> ys);

/// Pearson correlation coefficient r in [-1, +1] (paper Eq. 17).
/// Precondition: equal sizes, n >= 2, both series non-constant.
[[nodiscard]] double pearson(std::span<const double> xs,
                             std::span<const double> ys);

/// Spearman rank correlation (Pearson over mid-ranks; ties averaged).
/// Same preconditions as pearson.
[[nodiscard]] double spearman(std::span<const double> xs,
                              std::span<const double> ys);

}  // namespace tgi::stats
