#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace tgi::stats {

double sum(std::span<const double> xs) {
  // Kahan compensated summation: power traces can be 10^5 samples with a
  // wide dynamic range, and the energy integral feeds directly into TGI.
  double s = 0.0;
  double c = 0.0;
  for (double x : xs) {
    const double y = x - c;
    const double t = s + y;
    c = (t - s) - y;
    s = t;
  }
  return s;
}

double mean(std::span<const double> xs) {
  TGI_REQUIRE(!xs.empty(), "mean of empty data");
  return sum(xs) / static_cast<double>(xs.size());
}

double min(std::span<const double> xs) {
  TGI_REQUIRE(!xs.empty(), "min of empty data");
  return *std::min_element(xs.begin(), xs.end());
}

double max(std::span<const double> xs) {
  TGI_REQUIRE(!xs.empty(), "max of empty data");
  return *std::max_element(xs.begin(), xs.end());
}

double variance_population(std::span<const double> xs) {
  TGI_REQUIRE(!xs.empty(), "variance of empty data");
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size());
}

double variance_sample(std::span<const double> xs) {
  TGI_REQUIRE(xs.size() >= 2, "sample variance needs >= 2 points");
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size() - 1);
}

double stddev_sample(std::span<const double> xs) {
  return std::sqrt(variance_sample(xs));
}

double median(std::span<const double> xs) {
  TGI_REQUIRE(!xs.empty(), "median of empty data");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const std::size_t n = sorted.size();
  if (n % 2 == 1) return sorted[n / 2];
  return 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
}

double percentile(std::span<const double> xs, double q) {
  TGI_REQUIRE(!xs.empty(), "percentile of empty data");
  TGI_REQUIRE(q >= 0.0 && q <= 1.0, "quantile " << q << " outside [0,1]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double OnlineStats::mean() const {
  TGI_REQUIRE(n_ > 0, "mean of empty accumulator");
  return mean_;
}

double OnlineStats::min() const {
  TGI_REQUIRE(n_ > 0, "min of empty accumulator");
  return min_;
}

double OnlineStats::max() const {
  TGI_REQUIRE(n_ > 0, "max of empty accumulator");
  return max_;
}

double OnlineStats::variance_sample() const {
  TGI_REQUIRE(n_ >= 2, "sample variance needs >= 2 points");
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev_sample() const {
  return std::sqrt(variance_sample());
}

}  // namespace tgi::stats
