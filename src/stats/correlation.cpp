#include "stats/correlation.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "stats/descriptive.h"
#include "util/error.h"

namespace tgi::stats {

namespace {
void require_paired(std::span<const double> xs, std::span<const double> ys) {
  TGI_REQUIRE(xs.size() == ys.size(),
              "series sizes differ: " << xs.size() << " vs " << ys.size());
  TGI_REQUIRE(xs.size() >= 2, "correlation needs >= 2 points");
}

/// Mid-ranks (1-based; ties share the average of their positional ranks).
std::vector<double> midranks(std::span<const double> xs) {
  std::vector<std::size_t> order(xs.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
  std::vector<double> ranks(xs.size());
  std::size_t i = 0;
  while (i < order.size()) {
    std::size_t j = i;
    while (j + 1 < order.size() && xs[order[j + 1]] == xs[order[i]]) ++j;
    const double avg_rank =
        (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = avg_rank;
    i = j + 1;
  }
  return ranks;
}
}  // namespace

double covariance_sample(std::span<const double> xs,
                         std::span<const double> ys) {
  require_paired(xs, ys);
  const double mx = mean(xs);
  const double my = mean(ys);
  double acc = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    acc += (xs[i] - mx) * (ys[i] - my);
  }
  return acc / static_cast<double>(xs.size() - 1);
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  require_paired(xs, ys);
  const double sx = stddev_sample(xs);
  const double sy = stddev_sample(ys);
  TGI_REQUIRE(sx > 0.0 && sy > 0.0,
              "pearson undefined for a constant series");
  const double r = covariance_sample(xs, ys) / (sx * sy);
  // Guard against floating point drifting a hair outside [-1, 1].
  return std::clamp(r, -1.0, 1.0);
}

double spearman(std::span<const double> xs, std::span<const double> ys) {
  require_paired(xs, ys);
  const std::vector<double> rx = midranks(xs);
  const std::vector<double> ry = midranks(ys);
  return pearson(rx, ry);
}

}  // namespace tgi::stats
