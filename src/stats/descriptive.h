// Descriptive statistics over spans of doubles.
//
// Backing for the paper's evaluation machinery: the Pearson analysis in
// Table II needs means and standard deviations (Eq. 17), and the harness
// summarizes power traces (min/max/mean watts) with these helpers.
#pragma once

#include <span>
#include <vector>

namespace tgi::stats {

/// Sum of all elements (0 for an empty span).
[[nodiscard]] double sum(std::span<const double> xs);

/// Arithmetic mean. Precondition: xs is non-empty.
[[nodiscard]] double mean(std::span<const double> xs);

/// Smallest element. Precondition: xs is non-empty.
[[nodiscard]] double min(std::span<const double> xs);

/// Largest element. Precondition: xs is non-empty.
[[nodiscard]] double max(std::span<const double> xs);

/// Population variance (divides by n). Precondition: xs is non-empty.
[[nodiscard]] double variance_population(std::span<const double> xs);

/// Sample variance (divides by n-1). Precondition: xs.size() >= 2.
[[nodiscard]] double variance_sample(std::span<const double> xs);

/// Sample standard deviation. Precondition: xs.size() >= 2.
[[nodiscard]] double stddev_sample(std::span<const double> xs);

/// Median (average of the middle two for even n). Precondition: non-empty.
[[nodiscard]] double median(std::span<const double> xs);

/// Linear-interpolated percentile, q in [0, 1]. Precondition: non-empty.
[[nodiscard]] double percentile(std::span<const double> xs, double q);

/// Streaming mean/variance accumulator (Welford). Numerically stable for
/// long power traces; mergeable so per-thread accumulators can combine.
class OnlineStats {
 public:
  /// Folds one observation in.
  void add(double x);

  /// Merges another accumulator (parallel reduction step).
  void merge(const OnlineStats& other);

  [[nodiscard]] std::size_t count() const { return n_; }
  /// Precondition for mean/min/max: count() > 0.
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  /// Precondition: count() >= 2.
  [[nodiscard]] double variance_sample() const;
  [[nodiscard]] double stddev_sample() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace tgi::stats
