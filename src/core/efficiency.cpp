#include "core/efficiency.h"

#include "util/error.h"

namespace tgi::core {

const char* efficiency_metric_name(EfficiencyMetric metric) {
  switch (metric) {
    case EfficiencyMetric::kPerformancePerWatt:
      return "performance/watt";
    case EfficiencyMetric::kInverseEnergyDelay:
      return "1/(energy*delay)";
  }
  return "?";
}

double energy_efficiency(const BenchmarkMeasurement& m,
                         EfficiencyMetric metric,
                         const CoolingModel& cooling) {
  m.validate();
  TGI_REQUIRE(cooling.pue >= 1.0, "PUE must be >= 1, got " << cooling.pue);
  switch (metric) {
    case EfficiencyMetric::kPerformancePerWatt:
      return m.performance / (m.average_power.value() * cooling.pue);
    case EfficiencyMetric::kInverseEnergyDelay:
      return 1.0 / (m.energy.value() * cooling.pue *
                    m.execution_time.value());
  }
  throw util::InternalError("unknown efficiency metric");
}

}  // namespace tgi::core
