#include "core/tgi.h"

#include <algorithm>

#include <cmath>

#include "stats/means.h"
#include "util/error.h"

namespace tgi::core {

const char* weight_scheme_name(WeightScheme scheme) {
  switch (scheme) {
    case WeightScheme::kArithmeticMean:
      return "arithmetic-mean";
    case WeightScheme::kTime:
      return "time-weighted";
    case WeightScheme::kEnergy:
      return "energy-weighted";
    case WeightScheme::kPower:
      return "power-weighted";
    case WeightScheme::kCustom:
      return "custom";
  }
  return "?";
}

const char* aggregation_name(Aggregation aggregation) {
  switch (aggregation) {
    case Aggregation::kWeightedArithmetic:
      return "weighted-arithmetic";
    case Aggregation::kWeightedHarmonic:
      return "weighted-harmonic";
    case Aggregation::kWeightedGeometric:
      return "weighted-geometric";
  }
  return "?";
}

const TgiComponent& TgiResult::least_ree() const {
  TGI_REQUIRE(!components.empty(), "empty TGI result");
  return *std::min_element(components.begin(), components.end(),
                           [](const TgiComponent& a, const TgiComponent& b) {
                             return a.ree < b.ree;
                           });
}

TgiCalculator::TgiCalculator(std::vector<BenchmarkMeasurement> reference,
                             EfficiencyMetric metric,
                             CoolingModel reference_cooling)
    : reference_(std::move(reference)),
      metric_(metric),
      reference_cooling_(reference_cooling) {
  TGI_REQUIRE(!reference_.empty(), "reference suite must be non-empty");
  for (const auto& m : reference_) m.validate();
  for (std::size_t i = 0; i < reference_.size(); ++i) {
    for (std::size_t j = i + 1; j < reference_.size(); ++j) {
      TGI_REQUIRE(reference_[i].benchmark != reference_[j].benchmark,
                  "duplicate reference benchmark '"
                      << reference_[i].benchmark << "'");
    }
  }
}

std::vector<double> TgiCalculator::derive_weights(
    const std::vector<BenchmarkMeasurement>& system, WeightScheme scheme) {
  std::vector<double> raw;
  raw.reserve(system.size());
  switch (scheme) {
    case WeightScheme::kArithmeticMean:
      return stats::equal_weights(system.size());
    case WeightScheme::kTime:
      for (const auto& m : system) raw.push_back(m.execution_time.value());
      break;
    case WeightScheme::kEnergy:
      for (const auto& m : system) raw.push_back(m.energy.value());
      break;
    case WeightScheme::kPower:
      for (const auto& m : system) raw.push_back(m.average_power.value());
      break;
    case WeightScheme::kCustom:
      throw util::PreconditionError(
          "use compute_custom() for caller-supplied weights");
  }
  return stats::proportional_weights(raw);
}

TgiResult TgiCalculator::compute_with_weights(
    const std::vector<BenchmarkMeasurement>& system,
    std::span<const double> weights, WeightScheme scheme,
    const CoolingModel& system_cooling, Aggregation aggregation) const {
  TGI_REQUIRE(weights.size() == system.size(),
              "weight count mismatches benchmark count");
  TGI_REQUIRE(stats::weights_valid(weights),
              "weights must be non-negative and sum to 1");

  TgiResult result;
  result.scheme = scheme;
  result.aggregation = aggregation;
  result.metric = metric_;
  result.components.reserve(system.size());
  std::vector<double> rees;
  rees.reserve(system.size());
  double total = 0.0;
  for (std::size_t i = 0; i < system.size(); ++i) {
    const BenchmarkMeasurement& m = system[i];
    const BenchmarkMeasurement& ref =
        find_measurement(reference_, m.benchmark);
    TGI_REQUIRE(m.metric_unit == ref.metric_unit,
                m.benchmark << ": system reports " << m.metric_unit
                            << " but reference reports " << ref.metric_unit);
    TgiComponent comp;
    comp.benchmark = m.benchmark;
    comp.ee = energy_efficiency(m, metric_, system_cooling);
    comp.ref_ee = energy_efficiency(ref, metric_, reference_cooling_);
    TGI_CHECK(comp.ref_ee > 0.0, "reference EE must be positive");
    comp.ree = comp.ee / comp.ref_ee;  // Eq. 3
    comp.weight = weights[i];
    comp.contribution = comp.weight * comp.ree;  // one term of Eq. 4
    total += comp.contribution;
    rees.push_back(comp.ree);
    result.components.push_back(std::move(comp));
  }
  switch (aggregation) {
    case Aggregation::kWeightedArithmetic:
      result.tgi = total;
      break;
    case Aggregation::kWeightedHarmonic:
      result.tgi = stats::weighted_harmonic_mean(rees, weights);
      break;
    case Aggregation::kWeightedGeometric:
      result.tgi = stats::weighted_geometric_mean(rees, weights);
      break;
  }
  return result;
}

TgiResult TgiCalculator::compute(
    const std::vector<BenchmarkMeasurement>& system, WeightScheme scheme,
    const CoolingModel& system_cooling, Aggregation aggregation) const {
  TGI_REQUIRE(system.size() == reference_.size(),
              "system suite has " << system.size()
                                  << " benchmarks; reference has "
                                  << reference_.size()
                                  << " (use compute_partial for a degraded "
                                     "suite)");
  const std::vector<double> weights = derive_weights(system, scheme);
  return compute_with_weights(system, weights, scheme, system_cooling,
                              aggregation);
}

PartialTgiResult TgiCalculator::compute_partial(
    const std::vector<BenchmarkMeasurement>& system, WeightScheme scheme,
    const CoolingModel& system_cooling, Aggregation aggregation) const {
  TGI_REQUIRE(!system.empty(),
              "partial TGI needs at least one surviving benchmark");
  for (std::size_t i = 0; i < system.size(); ++i) {
    for (std::size_t j = i + 1; j < system.size(); ++j) {
      TGI_REQUIRE(system[i].benchmark != system[j].benchmark,
                  "duplicate system benchmark '" << system[i].benchmark
                                                 << "'");
    }
  }
  PartialTgiResult out;
  for (const auto& ref : reference_) {
    const bool present = std::any_of(
        system.begin(), system.end(), [&](const BenchmarkMeasurement& m) {
          return m.benchmark == ref.benchmark;
        });
    if (!present) out.missing.push_back(ref.benchmark);
  }
  // derive_weights normalizes over the surviving benchmarks only — the
  // renormalization that keeps a degraded TGI a convex combination.
  const std::vector<double> weights = derive_weights(system, scheme);
  out.result = compute_with_weights(system, weights, scheme, system_cooling,
                                    aggregation);
  return out;
}

TgiResult TgiCalculator::compute_custom(
    const std::vector<BenchmarkMeasurement>& system,
    std::span<const double> weights,
    const CoolingModel& system_cooling, Aggregation aggregation) const {
  TGI_REQUIRE(system.size() == reference_.size(),
              "system suite has " << system.size()
                                  << " benchmarks; reference has "
                                  << reference_.size());
  return compute_with_weights(system, weights, WeightScheme::kCustom,
                              system_cooling, aggregation);
}

}  // namespace tgi::core
