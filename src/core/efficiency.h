// Energy-efficiency metrics pluggable into TGI.
//
// The paper computes TGI over performance-per-watt (Eq. 2) but notes the
// methodology "can be used with any other energy-efficient metric, such as
// the energy-delay product" (Section II). Both are provided; inverse EDP is
// used so that, like perf/W, *larger is better* and the REE normalization
// of Eq. 3 stays a simple ratio.
#pragma once

#include "core/measurement.h"

namespace tgi::core {

enum class EfficiencyMetric {
  /// Performance / average wall power (the paper's choice; Eq. 2).
  kPerformancePerWatt,
  /// 1 / (energy × delay). Dimensionful, but REE cancels the units.
  kInverseEnergyDelay,
};

/// Human-readable metric name.
[[nodiscard]] const char* efficiency_metric_name(EfficiencyMetric metric);

/// Facility overhead applied on top of IT power — the paper's "TGI can be
/// extended to incorporate power consumed outside the HPC system, e.g.,
/// cooling" (Section II, advantage 2). PUE multiplies measured wall power
/// and energy.
struct CoolingModel {
  /// Power Usage Effectiveness; 1.0 = no facility overhead.
  double pue = 1.0;
};

/// The energy efficiency EE_i of one measurement (Eq. 2 generalized).
/// Precondition: measurement validates; pue >= 1.
[[nodiscard]] double energy_efficiency(const BenchmarkMeasurement& m,
                                       EfficiencyMetric metric,
                                       const CoolingModel& cooling = {});

}  // namespace tgi::core
