// The measurement tuple TGI is computed from.
#pragma once

#include <string>
#include <vector>

#include "power/meter.h"
#include "util/units.h"

namespace tgi::core {

/// One benchmark's observed (performance, power, time, energy) on one
/// system — the quantity Equations 2-4 of the paper operate on.
///
/// `performance` is in the benchmark's *own* metric (GFLOPS for HPL, MB/s
/// for STREAM and IOzone); TGI never compares raw performance across
/// benchmarks, only reference-normalized efficiencies, so heterogeneous
/// units are fine by construction (the point of the metric).
struct BenchmarkMeasurement {
  std::string benchmark;
  double performance = 0.0;
  std::string metric_unit;
  util::Watts average_power{0.0};
  util::Seconds execution_time{0.0};
  util::Joules energy{0.0};

  /// Throws unless the tuple is physically sensible (positive performance,
  /// power, and time; energy consistent with power·time within `tol`).
  void validate(double tol = 0.05) const;
};

/// Builds a measurement from a benchmark's performance figure and the
/// meter reading that covered its run.
[[nodiscard]] BenchmarkMeasurement make_measurement(
    std::string benchmark, double performance, std::string metric_unit,
    const power::MeterReading& reading);

/// Finds the measurement for `benchmark` in `set`; throws if absent.
[[nodiscard]] const BenchmarkMeasurement& find_measurement(
    const std::vector<BenchmarkMeasurement>& set,
    const std::string& benchmark);

}  // namespace tgi::core
