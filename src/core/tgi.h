// The Green Index (TGI) — the paper's primary contribution.
//
// Algorithm (Section II):
//   1. EE_i  = Performance_i / Power_i            for each benchmark i
//   2. REE_i = EE_i / EE_ref,i                    (SPEC-style normalization)
//   3. choose weights W_i, Σ W_i = 1
//   4. TGI   = Σ_i W_i · REE_i
//
// Weight schemes analyzed in Section III:
//   arithmetic mean  W_i = 1/n                           (Eqs. 6-8)
//   time weights     W_ti = t_i / Σ t_j                  (Eq. 10)
//   energy weights   W_ei = e_i / Σ e_j                  (Eq. 11)
//   power weights    W_pi = p_i / Σ p_j                  (Eq. 12)
// plus user-supplied custom weights (the paper's advantage 1: emphasize
// the component your application stresses).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/efficiency.h"
#include "core/measurement.h"

namespace tgi::core {

enum class WeightScheme {
  kArithmeticMean,
  kTime,
  kEnergy,
  kPower,
  kCustom,
};

/// Human-readable scheme name.
[[nodiscard]] const char* weight_scheme_name(WeightScheme scheme);

/// Central-tendency measure used to fold the weighted REEs (Eq. 4 uses the
/// weighted arithmetic mean; the related work the paper builds on — Smith
/// '88, John '04 — argues weighted harmonic/geometric means are also valid
/// summaries of normalized rates, and bench/ablation_mean_choice compares
/// them).
enum class Aggregation {
  kWeightedArithmetic,  ///< Σ w_i·REE_i (the paper's Eq. 4)
  kWeightedHarmonic,    ///< 1 / Σ (w_i / REE_i)
  kWeightedGeometric,   ///< Π REE_i^{w_i}
};

/// Human-readable aggregation name.
[[nodiscard]] const char* aggregation_name(Aggregation aggregation);

/// Per-benchmark TGI breakdown.
struct TgiComponent {
  std::string benchmark;
  double ee = 0.0;      ///< system energy efficiency (Eq. 2)
  double ref_ee = 0.0;  ///< reference energy efficiency
  double ree = 0.0;     ///< relative energy efficiency (Eq. 3)
  double weight = 0.0;  ///< W_i
  /// W_i · REE_i, this benchmark's contribution to the sum (Eq. 4).
  double contribution = 0.0;
};

/// A computed Green Index with full provenance.
struct TgiResult {
  double tgi = 0.0;
  WeightScheme scheme = WeightScheme::kArithmeticMean;
  Aggregation aggregation = Aggregation::kWeightedArithmetic;
  EfficiencyMetric metric = EfficiencyMetric::kPerformancePerWatt;
  std::vector<TgiComponent> components;

  /// The benchmark with the smallest REE — the paper expects TGI "to be
  /// bound by the benchmark with least REE" (Section IV-B).
  [[nodiscard]] const TgiComponent& least_ree() const;
};

/// TGI computed over a degraded (partial) suite: the surviving benchmarks'
/// result plus an explicit record of what is missing, so a number computed
/// without (say) IOzone can never masquerade as the full Green Index.
struct PartialTgiResult {
  TgiResult result;
  /// Reference benchmarks absent from the system set, in reference order.
  std::vector<std::string> missing;

  [[nodiscard]] bool partial() const { return !missing.empty(); }
};

/// Computes TGI against a fixed reference system.
///
/// The reference plays the role SystemG plays in the paper (and the Sun
/// Ultra machines play for SPEC): a measurement set for the same benchmark
/// suite whose EE values normalize the system under test.
class TgiCalculator {
 public:
  /// `reference` must contain one valid measurement per suite benchmark.
  explicit TgiCalculator(
      std::vector<BenchmarkMeasurement> reference,
      EfficiencyMetric metric = EfficiencyMetric::kPerformancePerWatt,
      CoolingModel reference_cooling = {});

  /// TGI of `system` under a derived weight scheme (not kCustom).
  /// `system` must cover exactly the reference's benchmark set.
  [[nodiscard]] TgiResult compute(
      const std::vector<BenchmarkMeasurement>& system, WeightScheme scheme,
      const CoolingModel& system_cooling = {},
      Aggregation aggregation = Aggregation::kWeightedArithmetic) const;

  /// TGI of a *partial* suite: `system` may cover any non-empty subset of
  /// the reference's benchmark set (the degraded path when a benchmark is
  /// lost after retry exhaustion — see harness/robust.h). The scheme's
  /// weights are derived over the surviving benchmarks only, so they
  /// renormalize to sum to 1 by construction, and the dropped reference
  /// benchmarks are recorded in `missing`. A full `system` yields exactly
  /// compute()'s result with an empty `missing`.
  [[nodiscard]] PartialTgiResult compute_partial(
      const std::vector<BenchmarkMeasurement>& system, WeightScheme scheme,
      const CoolingModel& system_cooling = {},
      Aggregation aggregation = Aggregation::kWeightedArithmetic) const;

  /// TGI with caller-supplied weights (must sum to 1, ordered to match
  /// `system`).
  [[nodiscard]] TgiResult compute_custom(
      const std::vector<BenchmarkMeasurement>& system,
      std::span<const double> weights,
      const CoolingModel& system_cooling = {},
      Aggregation aggregation = Aggregation::kWeightedArithmetic) const;

  [[nodiscard]] const std::vector<BenchmarkMeasurement>& reference() const {
    return reference_;
  }
  [[nodiscard]] EfficiencyMetric metric() const { return metric_; }

 private:
  [[nodiscard]] TgiResult compute_with_weights(
      const std::vector<BenchmarkMeasurement>& system,
      std::span<const double> weights, WeightScheme scheme,
      const CoolingModel& system_cooling, Aggregation aggregation) const;
  /// Derives the scheme's weights from the system measurements
  /// (Eqs. 6 and 10-12).
  [[nodiscard]] static std::vector<double> derive_weights(
      const std::vector<BenchmarkMeasurement>& system, WeightScheme scheme);

  std::vector<BenchmarkMeasurement> reference_;
  EfficiencyMetric metric_;
  CoolingModel reference_cooling_;
};

}  // namespace tgi::core
