#include "core/measurement.h"

#include <cmath>

#include "util/error.h"

namespace tgi::core {

void BenchmarkMeasurement::validate(double tol) const {
  TGI_REQUIRE(!benchmark.empty(), "measurement without a benchmark name");
  TGI_REQUIRE(performance > 0.0,
              benchmark << ": performance must be positive");
  TGI_REQUIRE(average_power.value() > 0.0,
              benchmark << ": power must be positive");
  TGI_REQUIRE(execution_time.value() > 0.0,
              benchmark << ": execution time must be positive");
  TGI_REQUIRE(energy.value() > 0.0, benchmark << ": energy must be positive");
  const double implied = average_power.value() * execution_time.value();
  TGI_REQUIRE(std::fabs(energy.value() - implied) <= tol * implied,
              benchmark << ": energy " << energy.value()
                        << " J inconsistent with power×time " << implied
                        << " J");
}

BenchmarkMeasurement make_measurement(std::string benchmark,
                                      double performance,
                                      std::string metric_unit,
                                      const power::MeterReading& reading) {
  BenchmarkMeasurement m;
  m.benchmark = std::move(benchmark);
  m.performance = performance;
  m.metric_unit = std::move(metric_unit);
  m.average_power = reading.average_power;
  m.execution_time = reading.duration;
  m.energy = reading.energy;
  m.validate();
  return m;
}

const BenchmarkMeasurement& find_measurement(
    const std::vector<BenchmarkMeasurement>& set,
    const std::string& benchmark) {
  for (const auto& m : set) {
    if (m.benchmark == benchmark) return m;
  }
  throw util::PreconditionError("no measurement for benchmark '" + benchmark +
                                "'");
}

}  // namespace tgi::core
