// Node- and cluster-level wall-power aggregation.
#pragma once

#include <cstddef>

#include "power/spec.h"
#include "util/units.h"

namespace tgi::power {

/// Instantaneous busy fractions of a node's components, each in [0, 1].
/// This is the interface between the execution simulator (which knows what
/// the benchmark is doing) and the power model (which knows what that costs).
struct ComponentUtilization {
  double cpu = 0.0;
  double memory = 0.0;
  double disk = 0.0;
  double network = 0.0;
  /// DVFS operating point in GHz; 0 means the socket's nominal clock.
  /// Dynamic CPU power scales ~(f/f_nominal)³ (see CpuPowerSpec::power).
  double dvfs_ghz = 0.0;

  /// A fully idle node.
  static constexpr ComponentUtilization idle() { return {}; }
};

/// Full power description of one node.
struct NodePowerSpec {
  CpuPowerSpec cpu;
  std::size_t sockets = 2;
  MemoryPowerSpec memory;
  DiskPowerSpec disk;
  std::size_t disks = 1;
  NicPowerSpec nic;
  /// Motherboard, fans, VRM losses and other fixed overhead (DC side).
  util::Watts board_overhead{30.0};
  PsuSpec psu;
};

/// Maps component utilization to node power.
class NodePowerModel {
 public:
  explicit NodePowerModel(NodePowerSpec spec);

  /// Total DC draw of the node at the given utilization.
  [[nodiscard]] util::Watts dc_power(const ComponentUtilization& u) const;

  /// AC wall draw (DC through the PSU efficiency curve).
  [[nodiscard]] util::Watts wall_power(const ComponentUtilization& u) const;

  /// Wall draw of a completely idle node (the meter's baseline).
  [[nodiscard]] util::Watts idle_wall_power() const;

  [[nodiscard]] const NodePowerSpec& spec() const { return spec_; }

 private:
  NodePowerSpec spec_;
};

/// Whole-cluster wall power under the SPMD assumption that active nodes
/// share one utilization profile (what a plug meter on the rack sees).
class ClusterPowerModel {
 public:
  /// `switch_power` covers interconnect switches and other shared gear that
  /// draws constant power regardless of load.
  ClusterPowerModel(NodePowerModel node_model, std::size_t node_count,
                    util::Watts switch_power);

  /// Wall power with `active_nodes` at utilization `u` and the remaining
  /// nodes idle. Precondition: active_nodes <= node_count.
  [[nodiscard]] util::Watts wall_power(const ComponentUtilization& u,
                                       std::size_t active_nodes) const;

  /// Wall power with every node idle.
  [[nodiscard]] util::Watts idle_wall_power() const;

  [[nodiscard]] std::size_t node_count() const { return node_count_; }
  [[nodiscard]] const NodePowerModel& node_model() const {
    return node_model_;
  }

 private:
  NodePowerModel node_model_;
  std::size_t node_count_;
  util::Watts switch_power_;
};

}  // namespace tgi::power
