#include "power/spec.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace tgi::power {

namespace {
double clamp_fraction(double utilization) {
  TGI_REQUIRE(std::isfinite(utilization),
              "utilization must be finite, got " << utilization);
  return std::clamp(utilization, 0.0, 1.0);
}
}  // namespace

util::Watts CpuPowerSpec::power(double utilization, double ghz) const {
  const double u = clamp_fraction(utilization);
  TGI_REQUIRE(ghz > 0.0, "clock must be positive");
  // Dynamic CMOS power scales ~ f·V²; with voltage tracking frequency this
  // is ~ (f/f0)³ applied to the dynamic component only.
  const double f_ratio = ghz / nominal_ghz;
  const util::Watts dynamic = (max_load - idle) * (u * f_ratio * f_ratio *
                                                   f_ratio);
  return idle + dynamic;
}

util::Watts MemoryPowerSpec::power(double utilization) const {
  const double u = clamp_fraction(utilization);
  return background + (max_active - background) * u;
}

util::Watts DiskPowerSpec::power(double utilization) const {
  const double u = clamp_fraction(utilization);
  return idle + (active - idle) * u;
}

util::Watts NicPowerSpec::power(double utilization) const {
  const double u = clamp_fraction(utilization);
  return idle + (active - idle) * u;
}

double PsuSpec::efficiency(util::Watts dc_load) const {
  TGI_REQUIRE(rated_dc.value() > 0.0, "PSU rating must be positive");
  const double load =
      std::clamp(dc_load.value() / rated_dc.value(), 0.05, 1.0);
  double eff = 0.0;
  if (load <= 0.2) {
    // Below 20% load efficiency degrades towards a floor.
    const double t = (load - 0.05) / 0.15;
    eff = 0.70 + t * (efficiency_at_20pct - 0.70);
  } else if (load <= 0.5) {
    const double t = (load - 0.2) / 0.3;
    eff = efficiency_at_20pct + t * (efficiency_at_50pct - efficiency_at_20pct);
  } else {
    const double t = (load - 0.5) / 0.5;
    eff = efficiency_at_50pct +
          t * (efficiency_at_100pct - efficiency_at_50pct);
  }
  TGI_CHECK(eff > 0.0 && eff <= 1.0, "PSU efficiency out of range: " << eff);
  return eff;
}

util::Watts PsuSpec::wall_power(util::Watts dc_load) const {
  TGI_REQUIRE(dc_load.value() >= 0.0, "DC load must be non-negative");
  if (dc_load.value() == 0.0) return util::Watts(0.0);
  return util::Watts(dc_load.value() / efficiency(dc_load));
}

}  // namespace tgi::power
