#include "power/timeline.h"

#include <algorithm>

#include "util/error.h"

namespace tgi::power {

PowerTimeline::PowerTimeline(ClusterPowerModel model,
                             std::vector<UtilizationSegment> segments)
    : model_(std::move(model)), segments_(std::move(segments)) {
  TGI_REQUIRE(!segments_.empty(), "timeline needs at least one segment");
  double t = 0.0;
  cumulative_end_.reserve(segments_.size());
  for (const auto& seg : segments_) {
    TGI_REQUIRE(seg.duration.value() > 0.0,
                "segment duration must be positive");
    TGI_REQUIRE(seg.active_nodes <= model_.node_count(),
                "segment uses more nodes than the cluster has");
    t += seg.duration.value();
    cumulative_end_.push_back(t);
  }
  total_ = util::Seconds(t);
}

util::Watts PowerTimeline::power_at(util::Seconds t) const {
  TGI_REQUIRE(t.value() >= 0.0, "negative time");
  if (t >= total_) return model_.idle_wall_power();
  const auto it = std::upper_bound(cumulative_end_.begin(),
                                   cumulative_end_.end(), t.value());
  const auto idx =
      static_cast<std::size_t>(it - cumulative_end_.begin());
  const auto& seg = segments_[idx];
  return model_.wall_power(seg.utilization, seg.active_nodes);
}

util::Joules PowerTimeline::exact_energy() const {
  util::Joules total{0.0};
  for (const auto& seg : segments_) {
    total += model_.wall_power(seg.utilization, seg.active_nodes) *
             seg.duration;
  }
  return total;
}

util::Watts PowerTimeline::exact_average_power() const {
  return exact_energy() / total_;
}

PowerSource PowerTimeline::as_source() const {
  // Capture by value: the returned source must outlive this object safely
  // (CP.31: pass small data by value between concurrent consumers).
  return [copy = *this](util::Seconds t) { return copy.power_at(t); };
}

}  // namespace tgi::power
