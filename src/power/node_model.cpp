#include "power/node_model.h"

#include "util/error.h"

namespace tgi::power {

NodePowerModel::NodePowerModel(NodePowerSpec spec) : spec_(spec) {
  TGI_REQUIRE(spec_.sockets > 0, "node needs at least one socket");
}

util::Watts NodePowerModel::dc_power(const ComponentUtilization& u) const {
  util::Watts total = spec_.board_overhead;
  const double ghz = u.dvfs_ghz > 0.0 ? u.dvfs_ghz : spec_.cpu.nominal_ghz;
  total += spec_.cpu.power(u.cpu, ghz) * static_cast<double>(spec_.sockets);
  total += spec_.memory.power(u.memory);
  total += spec_.disk.power(u.disk) * static_cast<double>(spec_.disks);
  total += spec_.nic.power(u.network);
  return total;
}

util::Watts NodePowerModel::wall_power(const ComponentUtilization& u) const {
  return spec_.psu.wall_power(dc_power(u));
}

util::Watts NodePowerModel::idle_wall_power() const {
  return wall_power(ComponentUtilization::idle());
}

ClusterPowerModel::ClusterPowerModel(NodePowerModel node_model,
                                     std::size_t node_count,
                                     util::Watts switch_power)
    : node_model_(node_model),
      node_count_(node_count),
      switch_power_(switch_power) {
  TGI_REQUIRE(node_count_ > 0, "cluster needs at least one node");
  TGI_REQUIRE(switch_power_.value() >= 0.0,
              "switch power must be non-negative");
}

util::Watts ClusterPowerModel::wall_power(const ComponentUtilization& u,
                                          std::size_t active_nodes) const {
  TGI_REQUIRE(active_nodes <= node_count_,
              "active nodes " << active_nodes << " exceeds cluster size "
                              << node_count_);
  const auto active = static_cast<double>(active_nodes);
  const auto idle = static_cast<double>(node_count_ - active_nodes);
  return node_model_.wall_power(u) * active +
         node_model_.idle_wall_power() * idle + switch_power_;
}

util::Watts ClusterPowerModel::idle_wall_power() const {
  return wall_power(ComponentUtilization::idle(), node_count_);
}

}  // namespace tgi::power
