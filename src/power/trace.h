// Time-stamped power traces and energy integration.
#pragma once

#include <vector>

#include "util/units.h"

namespace tgi::power {

/// One meter sample: instantaneous wall power at time `t` since run start.
struct PowerSample {
  util::Seconds t{0.0};
  util::Watts watts{0.0};
};

/// An ordered sequence of power samples with derived quantities.
///
/// Energy is the trapezoidal integral of the samples — the same numeric
/// integration a Watts Up? meter performs internally — and average power is
/// energy divided by the spanned duration, i.e. *time-weighted*, so uneven
/// sampling does not bias it.
class PowerTrace {
 public:
  PowerTrace() = default;

  /// Appends a sample; time stamps must be non-decreasing.
  void add(PowerSample sample);

  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] std::size_t size() const { return samples_.size(); }
  [[nodiscard]] const std::vector<PowerSample>& samples() const {
    return samples_;
  }

  /// Time spanned from first to last sample. Precondition: size() >= 1.
  [[nodiscard]] util::Seconds duration() const;

  /// Trapezoidal energy integral. Precondition: size() >= 2.
  [[nodiscard]] util::Joules energy() const;

  /// Time-weighted average power = energy() / duration().
  /// Precondition: size() >= 2 and duration() > 0.
  [[nodiscard]] util::Watts average_power() const;

  /// Extremes over the trace. Precondition: size() >= 1.
  [[nodiscard]] util::Watts max_power() const;
  [[nodiscard]] util::Watts min_power() const;

 private:
  std::vector<PowerSample> samples_;
};

}  // namespace tgi::power
