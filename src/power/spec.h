// Component-level power specifications.
//
// The paper measures whole-system wall power with a plug meter. We
// reconstruct that wall power from first principles: per-component DC draw
// (CPU sockets, memory, disks, NIC, board/fans) summed per node and pushed
// through a PSU efficiency curve. The numbers in the machine catalog
// (sim/catalog.cpp) are taken from vendor TDP/idle datasheet values of the
// actual parts in the paper's testbeds (Opteron 6134, Xeon 5462).
//
// Linear idle+dynamic·utilization models per component are the standard
// first-order approximation in the power-modeling literature and are exactly
// what TGI consumes: average watts over a benchmark run.
#pragma once

#include "util/units.h"

namespace tgi::power {

/// One CPU socket: P = idle + (max - idle) · utilization, optionally scaled
/// by a DVFS frequency/voltage point (P_dyn ∝ f·V², approximated as f³ when
/// voltage tracks frequency).
struct CpuPowerSpec {
  util::Watts idle{15.0};
  util::Watts max_load{80.0};
  /// Nominal core clock in GHz; DVFS scaling is relative to this.
  double nominal_ghz = 2.3;

  /// Dynamic power at `utilization` in [0,1] and clock `ghz`.
  [[nodiscard]] util::Watts power(double utilization, double ghz) const;
  /// Power at nominal frequency.
  [[nodiscard]] util::Watts power(double utilization) const {
    return power(utilization, nominal_ghz);
  }
};

/// Memory subsystem per node: background (refresh/standby) plus a term
/// proportional to delivered bandwidth fraction.
struct MemoryPowerSpec {
  util::Watts background{8.0};
  util::Watts max_active{25.0};

  /// Power at bandwidth `utilization` in [0,1].
  [[nodiscard]] util::Watts power(double utilization) const;
};

/// One spinning disk: idle (platters spinning) vs active (seek/transfer).
struct DiskPowerSpec {
  util::Watts idle{5.0};
  util::Watts active{10.0};

  /// Power when the device is busy a `utilization` fraction of the time.
  [[nodiscard]] util::Watts power(double utilization) const;
};

/// Network interface (HCA/NIC): near-constant idle plus a small active bump.
struct NicPowerSpec {
  util::Watts idle{6.0};
  util::Watts active{12.0};

  [[nodiscard]] util::Watts power(double utilization) const;
};

/// Power-supply efficiency as a piecewise-linear function of load fraction.
/// Real PSUs (80 PLUS curves) are least efficient at low load, peak around
/// 50%, and dip slightly at 100%; we model three anchor points.
struct PsuSpec {
  double efficiency_at_20pct = 0.82;
  double efficiency_at_50pct = 0.88;
  double efficiency_at_100pct = 0.85;
  /// DC output the PSU is rated for; load fraction = dc_load / rated.
  util::Watts rated_dc{800.0};

  /// Interpolated efficiency for the given DC load. Clamped to [5%, 100%]
  /// load for the lookup; efficiency is always in (0, 1].
  [[nodiscard]] double efficiency(util::Watts dc_load) const;

  /// AC wall draw needed to deliver `dc_load`.
  [[nodiscard]] util::Watts wall_power(util::Watts dc_load) const;
};

}  // namespace tgi::power
