#include "power/breakdown.h"

#include <algorithm>

#include "util/error.h"
#include "util/format.h"
#include "util/table.h"

namespace tgi::power {

double EnergyBreakdown::fraction(util::Joules part) const {
  const double t = total().value();
  TGI_REQUIRE(t > 0.0, "breakdown has no energy");
  return part.value() / t;
}

double EnergyBreakdown::non_compute_fraction() const {
  return 1.0 - fraction(cpu);
}

ComponentPower component_power(const NodePowerModel& node,
                               const ComponentUtilization& u) {
  const NodePowerSpec& spec = node.spec();
  ComponentPower out;
  const double ghz = u.dvfs_ghz > 0.0 ? u.dvfs_ghz : spec.cpu.nominal_ghz;
  out.cpu = spec.cpu.power(u.cpu, ghz) * static_cast<double>(spec.sockets);
  out.memory = spec.memory.power(u.memory);
  out.disk = spec.disk.power(u.disk) * static_cast<double>(spec.disks);
  out.nic = spec.nic.power(u.network);
  out.board = spec.board_overhead;
  const util::Watts dc = node.dc_power(u);
  out.psu_loss = node.wall_power(u) - dc;
  TGI_CHECK(out.psu_loss.value() >= -1e-9, "negative PSU loss");
  return out;
}

EnergyBreakdown energy_breakdown(const PowerTimeline& timeline) {
  const ClusterPowerModel& cluster = timeline.model();
  const NodePowerModel& node = cluster.node_model();
  EnergyBreakdown out;
  const ComponentPower idle =
      component_power(node, ComponentUtilization::idle());

  for (const auto& segment : timeline.segments()) {
    const ComponentPower active =
        component_power(node, segment.utilization);
    const auto n_active = static_cast<double>(segment.active_nodes);
    const auto n_idle =
        static_cast<double>(cluster.node_count() - segment.active_nodes);
    const util::Seconds dt = segment.duration;
    out.cpu += (active.cpu * n_active + idle.cpu * n_idle) * dt;
    out.memory += (active.memory * n_active + idle.memory * n_idle) * dt;
    out.disk += (active.disk * n_active + idle.disk * n_idle) * dt;
    out.nic += (active.nic * n_active + idle.nic * n_idle) * dt;
    out.board += (active.board * n_active + idle.board * n_idle) * dt;
    out.psu_loss +=
        (active.psu_loss * n_active + idle.psu_loss * n_idle) * dt;
  }
  // The cluster model adds constant switch power on top of the node sums;
  // the difference between metered energy and the component sum is exactly
  // that, and it belongs to the network column.
  const util::Joules switch_energy =
      timeline.exact_energy() - out.total();
  TGI_CHECK(switch_energy.value() > -1e-6 * timeline.exact_energy().value(),
            "component sum exceeds metered energy");
  out.nic += util::Joules(std::max(switch_energy.value(), 0.0));
  return out;
}

std::string render_breakdown(const EnergyBreakdown& breakdown) {
  util::TextTable table({"component", "energy", "share"});
  const auto row = [&](const char* name, util::Joules e) {
    table.add_row({name, util::format(e),
                   util::percent(breakdown.fraction(e), 1)});
  };
  row("CPU sockets", breakdown.cpu);
  row("memory", breakdown.memory);
  row("disks", breakdown.disk);
  row("network (NIC+switch)", breakdown.nic);
  row("board/fans", breakdown.board);
  row("PSU conversion loss", breakdown.psu_loss);
  table.add_row({"TOTAL", util::format(breakdown.total()), "100.0%"});
  std::string out = table.to_string();
  out += "non-compute share: " +
         util::percent(breakdown.non_compute_fraction(), 1) + "\n";
  return out;
}

}  // namespace tgi::power
