// Component-level power and energy attribution.
//
// The paper's motivation quotes the exascale study: "the energy
// consumption of a HPC system when executing non-computational tasks,
// especially data movement, is expected to overtake the energy consumed
// due to the processing elements." This module answers that question for
// any simulated run: given a utilization timeline, how many joules went
// to CPUs, memory, disks, NICs, board overhead, and PSU conversion loss?
#pragma once

#include <string>

#include "power/node_model.h"
#include "power/timeline.h"
#include "util/units.h"

namespace tgi::power {

/// Instantaneous per-component draw of one node (DC side) plus the AC
/// conversion loss.
struct ComponentPower {
  util::Watts cpu{0.0};
  util::Watts memory{0.0};
  util::Watts disk{0.0};
  util::Watts nic{0.0};
  util::Watts board{0.0};
  /// Wall draw minus DC draw (PSU inefficiency).
  util::Watts psu_loss{0.0};

  [[nodiscard]] util::Watts total_wall() const {
    return cpu + memory + disk + nic + board + psu_loss;
  }
};

/// Per-component energy over a whole run.
struct EnergyBreakdown {
  util::Joules cpu{0.0};
  util::Joules memory{0.0};
  util::Joules disk{0.0};
  util::Joules nic{0.0};
  util::Joules board{0.0};
  util::Joules psu_loss{0.0};

  [[nodiscard]] util::Joules total() const {
    return cpu + memory + disk + nic + board + psu_loss;
  }
  /// Fraction of total energy attributed to a component.
  [[nodiscard]] double fraction(util::Joules part) const;
  /// Fraction NOT spent in the CPUs — the paper's "non-computational"
  /// share (memory + disk + NIC + board + conversion loss).
  [[nodiscard]] double non_compute_fraction() const;
};

/// Splits one node's draw at `u` into components (wall-referred: each DC
/// component as-is, plus the lumped PSU loss).
[[nodiscard]] ComponentPower component_power(const NodePowerModel& node,
                                             const ComponentUtilization& u);

/// Integrates a timeline into a per-component energy breakdown for the
/// whole metered cluster (active nodes at the segment's utilization, the
/// rest idle; switch power is charged to `nic`).
[[nodiscard]] EnergyBreakdown energy_breakdown(const PowerTimeline& timeline);

/// Renders the breakdown as an aligned table with percentages.
[[nodiscard]] std::string render_breakdown(const EnergyBreakdown& breakdown);

}  // namespace tgi::power
