// Piecewise-constant power timelines: the bridge from the execution
// simulator to the power meter.
//
// The simulator decomposes a benchmark run into phases, each with a
// duration and a component-utilization profile. A PowerTimeline turns that
// phase list (plus the cluster power model) into a function Watts(t) that a
// meter can sample, exactly as the physical Watts Up? meter sampled the
// Fire cluster's wall outlet in the paper's Figure 1 setup.
#pragma once

#include <functional>
#include <vector>

#include "power/node_model.h"
#include "util/units.h"

namespace tgi::power {

/// Any source of instantaneous wall power as a function of time.
using PowerSource = std::function<util::Watts(util::Seconds)>;

/// One simulated execution phase on the cluster.
struct UtilizationSegment {
  util::Seconds duration{0.0};
  ComponentUtilization utilization;
  /// Nodes participating in this phase; the rest idle at baseline power.
  std::size_t active_nodes = 0;
};

/// A sequence of utilization segments bound to a cluster power model.
class PowerTimeline {
 public:
  PowerTimeline(ClusterPowerModel model,
                std::vector<UtilizationSegment> segments);

  /// Total duration of all segments.
  [[nodiscard]] util::Seconds duration() const { return total_; }

  /// Instantaneous wall power at time `t`. For t past the end, the cluster
  /// is idle (the run has finished; the meter keeps reading baseline).
  [[nodiscard]] util::Watts power_at(util::Seconds t) const;

  /// Exact energy over the full timeline (piecewise-constant, so the
  /// integral is a finite sum — no quadrature error). This is the ground
  /// truth the WattsUpMeter's sampled estimate is tested against.
  [[nodiscard]] util::Joules exact_energy() const;

  /// Exact time-weighted average power over the timeline.
  [[nodiscard]] util::Watts exact_average_power() const;

  /// Adapts this timeline to the generic PowerSource interface.
  [[nodiscard]] PowerSource as_source() const;

  [[nodiscard]] const std::vector<UtilizationSegment>& segments() const {
    return segments_;
  }
  [[nodiscard]] const ClusterPowerModel& model() const { return model_; }

 private:
  ClusterPowerModel model_;
  std::vector<UtilizationSegment> segments_;
  std::vector<double> cumulative_end_;  // prefix sums of segment durations
  util::Seconds total_{0.0};
};

}  // namespace tgi::power
