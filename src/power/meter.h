// Power meters: instruments that observe a PowerSource over a run.
//
// The paper measures energy with a Watts Up? PRO ES plug meter between the
// outlet and the system (Figure 1). WattsUpMeter reproduces that
// instrument's observable behaviour — 1 Hz sampling, finite resolution,
// ±1.5 % accuracy class — so that harness code written against `PowerMeter`
// would run unchanged against a driver for the physical device. ModelMeter
// is the "perfect instrument" used for ground truth and ablations.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "power/timeline.h"
#include "power/trace.h"
#include "util/units.h"

namespace tgi::power {

/// Summary a meter reports for one observed run.
struct MeterReading {
  PowerTrace trace;
  util::Seconds duration{0.0};
  util::Joules energy{0.0};
  util::Watts average_power{0.0};
};

/// Abstract instrument that watches a power source for a fixed duration.
class PowerMeter {
 public:
  virtual ~PowerMeter() = default;

  /// Observes `source` over [0, duration] and reports the measurement.
  /// Precondition: duration > 0.
  [[nodiscard]] virtual MeterReading measure(const PowerSource& source,
                                             util::Seconds duration) = 0;

  /// Human-readable instrument name for reports.
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Configuration of the simulated Watts Up? PRO ES.
struct WattsUpConfig {
  /// Sampling period; the real device logs at 1 Hz.
  util::Seconds sample_interval{1.0};
  /// Display/record resolution: readings quantize to this step (0.1 W).
  util::Watts resolution{0.1};
  /// Accuracy class: each run draws a fixed gain error uniform in
  /// ±accuracy_pct (1.5 % for the PRO ES per its datasheet).
  double accuracy_pct = 1.5;
  /// Per-sample zero-mean jitter as a fraction of the reading (noise floor).
  double noise_pct = 0.2;
  /// Probability that a sample is lost (serial-link dropouts on the real
  /// instrument). Lost samples leave gaps in the trace; the trapezoidal
  /// integration bridges them.
  double dropout_rate = 0.0;
  /// Seed for the instrument's error draws (reproducible experiments).
  std::uint64_t seed = 0x9e3779b9ULL;
  /// Starting value of the internal run counter. Each measure() call
  /// advances the counter and derives its RNG stream from (seed, counter),
  /// so a fresh meter constructed with run_offset = k behaves exactly like
  /// a meter that already performed k measurements. harness::ParallelSweep
  /// uses this to give every sweep point its own meter whose error draws
  /// are bit-identical to one meter shared across a serial sweep.
  std::uint64_t run_offset = 0;
};

/// Simulated plug meter with the Watts Up? PRO ES error model.
class WattsUpMeter final : public PowerMeter {
 public:
  explicit WattsUpMeter(WattsUpConfig config = {});

  [[nodiscard]] MeterReading measure(const PowerSource& source,
                                     util::Seconds duration) override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] const WattsUpConfig& config() const { return config_; }

 private:
  WattsUpConfig config_;
  std::uint64_t run_counter_ = 0;
};

/// Idealized meter: dense sampling, no quantization, no error. Used as
/// ground truth in tests and for the meter-fidelity ablation.
class ModelMeter final : public PowerMeter {
 public:
  /// `sample_interval` controls integration resolution only.
  explicit ModelMeter(util::Seconds sample_interval = util::Seconds(0.05));

  [[nodiscard]] MeterReading measure(const PowerSource& source,
                                     util::Seconds duration) override;
  [[nodiscard]] std::string name() const override;

 private:
  util::Seconds sample_interval_;
};

/// Convenience: build the reading summary from a finished trace.
[[nodiscard]] MeterReading summarize(PowerTrace trace);

}  // namespace tgi::power
