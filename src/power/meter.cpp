#include "power/meter.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"
#include "util/rng.h"

namespace tgi::power {

MeterReading summarize(PowerTrace trace) {
  TGI_REQUIRE(trace.size() >= 2, "meter produced fewer than 2 samples");
  MeterReading reading;
  reading.duration = trace.duration();
  reading.energy = trace.energy();
  reading.average_power = trace.average_power();
  reading.trace = std::move(trace);
  return reading;
}

WattsUpMeter::WattsUpMeter(WattsUpConfig config)
    : config_(config), run_counter_(config.run_offset) {
  TGI_REQUIRE(config_.sample_interval.value() > 0.0,
              "sample interval must be positive");
  TGI_REQUIRE(config_.resolution.value() >= 0.0,
              "resolution must be non-negative");
  TGI_REQUIRE(config_.accuracy_pct >= 0.0 && config_.noise_pct >= 0.0,
              "error percentages must be non-negative");
  TGI_REQUIRE(config_.dropout_rate >= 0.0 && config_.dropout_rate < 0.5,
              "dropout rate must be in [0, 0.5)");
}

MeterReading WattsUpMeter::measure(const PowerSource& source,
                                   util::Seconds duration) {
  TGI_REQUIRE(duration.value() > 0.0, "measurement duration must be > 0");
  // Each `measure` call is a fresh plug-in of the instrument: a new fixed
  // gain error is drawn (unit-to-unit/per-session calibration error), then
  // per-sample noise rides on top. Advancing run_counter_ keeps repeated
  // measurements in one sweep independent yet reproducible.
  util::Xoshiro256 rng(config_.seed + 0x632be59bd9b4e019ULL * ++run_counter_);
  const double gain =
      1.0 + rng.uniform(-config_.accuracy_pct, config_.accuracy_pct) / 100.0;

  PowerTrace trace;
  const double dt = config_.sample_interval.value();
  const auto steps =
      static_cast<std::size_t>(std::ceil(duration.value() / dt));
  for (std::size_t i = 0; i <= steps; ++i) {
    const util::Seconds t(std::min(static_cast<double>(i) * dt,
                                   duration.value()));
    // Serial-link dropouts lose interior samples; the first and last are
    // always kept so the reading spans the run.
    if (config_.dropout_rate > 0.0 && i != 0 && i != steps &&
        rng.uniform() < config_.dropout_rate) {
      continue;
    }
    const double true_watts = source(t).value();
    TGI_CHECK(true_watts >= 0.0, "source returned negative power");
    double observed = true_watts * gain;
    if (config_.noise_pct > 0.0) {
      observed *= 1.0 + rng.normal(0.0, config_.noise_pct / 100.0);
    }
    if (config_.resolution.value() > 0.0) {
      const double q = config_.resolution.value();
      observed = std::round(observed / q) * q;
    }
    trace.add({t, util::Watts(std::max(observed, 0.0))});
  }
  return summarize(std::move(trace));
}

std::string WattsUpMeter::name() const { return "WattsUp-PRO-ES(sim)"; }

ModelMeter::ModelMeter(util::Seconds sample_interval)
    : sample_interval_(sample_interval) {
  TGI_REQUIRE(sample_interval_.value() > 0.0,
              "sample interval must be positive");
}

MeterReading ModelMeter::measure(const PowerSource& source,
                                 util::Seconds duration) {
  TGI_REQUIRE(duration.value() > 0.0, "measurement duration must be > 0");
  PowerTrace trace;
  const double dt = sample_interval_.value();
  const auto steps =
      static_cast<std::size_t>(std::ceil(duration.value() / dt));
  for (std::size_t i = 0; i <= steps; ++i) {
    const util::Seconds t(std::min(static_cast<double>(i) * dt,
                                   duration.value()));
    trace.add({t, source(t)});
  }
  return summarize(std::move(trace));
}

std::string ModelMeter::name() const { return "ModelMeter(exact)"; }

}  // namespace tgi::power
