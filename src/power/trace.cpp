#include "power/trace.h"

#include <algorithm>

#include "util/error.h"

namespace tgi::power {

void PowerTrace::add(PowerSample sample) {
  TGI_REQUIRE(sample.watts.value() >= 0.0,
              "power sample must be non-negative");
  if (!samples_.empty()) {
    TGI_REQUIRE(sample.t >= samples_.back().t,
                "sample timestamps must be non-decreasing");
  }
  samples_.push_back(sample);
}

util::Seconds PowerTrace::duration() const {
  TGI_REQUIRE(!samples_.empty(), "duration of empty trace");
  return samples_.back().t - samples_.front().t;
}

util::Joules PowerTrace::energy() const {
  TGI_REQUIRE(samples_.size() >= 2, "energy needs >= 2 samples");
  util::Joules total{0.0};
  for (std::size_t i = 1; i < samples_.size(); ++i) {
    const util::Seconds dt = samples_[i].t - samples_[i - 1].t;
    const util::Watts avg =
        (samples_[i].watts + samples_[i - 1].watts) * 0.5;
    total += avg * dt;
  }
  return total;
}

util::Watts PowerTrace::average_power() const {
  const util::Seconds span = duration();
  TGI_REQUIRE(span.value() > 0.0, "average power of zero-length trace");
  return energy() / span;
}

util::Watts PowerTrace::max_power() const {
  TGI_REQUIRE(!samples_.empty(), "max of empty trace");
  return std::max_element(samples_.begin(), samples_.end(),
                          [](const PowerSample& a, const PowerSample& b) {
                            return a.watts < b.watts;
                          })
      ->watts;
}

util::Watts PowerTrace::min_power() const {
  TGI_REQUIRE(!samples_.empty(), "min of empty trace");
  return std::min_element(samples_.begin(), samples_.end(),
                          [](const PowerSample& a, const PowerSample& b) {
                            return a.watts < b.watts;
                          })
      ->watts;
}

}  // namespace tgi::power
