#include "serve/spec.h"

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <utility>

#include "harness/cache.h"
#include "sim/catalog.h"
#include "sim/spec_io.h"
#include "util/config.h"
#include "util/error.h"

namespace tgi::serve {

namespace {

std::string read_text_file(const std::string& path, const char* what) {
  std::ifstream in(path, std::ios::binary);
  TGI_REQUIRE(in.good(), what << " '" << path << "' cannot be opened");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string trim(const std::string& text) {
  const std::size_t begin = text.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const std::size_t end = text.find_last_not_of(" \t\r");
  return text.substr(begin, end - begin + 1);
}

void validate_entry_name(const std::string& name) {
  TGI_REQUIRE(!name.empty(), "campaign entry name must not be empty");
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                    c == '-';
    TGI_REQUIRE(ok, "campaign entry name '"
                        << name
                        << "' must use only [A-Za-z0-9._-] (it names an "
                           "output directory)");
  }
}

/// Resolves a campaign cluster reference: a builtin catalog name or a
/// spec-file path (relative paths resolve against `base_dir`).
sim::ClusterSpec resolve_cluster(const std::string& value,
                                 const std::string& base_dir) {
  if (value == "fire") return sim::fire_cluster();
  if (value == "systemg") return sim::system_g();
  std::filesystem::path path(value);
  if (path.is_relative() && !base_dir.empty()) {
    path = std::filesystem::path(base_dir) / path;
  }
  return sim::load_cluster_file(path.string());
}

harness::SweepGranularity parse_granularity(const std::string& text) {
  if (text == "task") return harness::SweepGranularity::kTask;
  if (text == "point") return harness::SweepGranularity::kPoint;
  throw util::PreconditionError(
      "granularity must be 'point' or 'task', got '" + text + "'");
}

/// Builds one entry from its parsed key=value section.
CampaignSpec build_entry(const std::string& name, const util::Config& cfg,
                        const std::string& base_dir) {
  util::require_known_keys(cfg,
                           {"cluster", "reference", "sweep", "seed", "meter",
                            "faults", "granularity"},
                           "campaign entry [" + name + "]");
  CampaignSpec spec;
  spec.name = name;
  validate_entry_name(spec.name);
  spec.cluster = resolve_cluster(cfg.get_string("cluster", "fire"), base_dir);
  spec.reference =
      resolve_cluster(cfg.get_string("reference", "systemg"), base_dir);
  TGI_REQUIRE(cfg.has("sweep"),
              "campaign entry [" << name << "] needs sweep=V1,V2,...");
  for (const long long value : cfg.get_int_list("sweep", {})) {
    TGI_REQUIRE(value > 0, "campaign entry [" << name
                                              << "]: sweep values must be "
                                                 "positive, got "
                                              << value);
    spec.sweep.push_back(static_cast<std::size_t>(value));
  }
  TGI_REQUIRE(!spec.sweep.empty(),
              "campaign entry [" << name << "] needs a non-empty sweep");
  spec.seed = static_cast<std::uint64_t>(
      cfg.get_int("seed", static_cast<long long>(spec.seed)));
  const std::string meter = cfg.get_string("meter", "wattsup");
  TGI_REQUIRE(meter == "wattsup" || meter == "model",
              "campaign entry [" << name
                                 << "]: meter must be 'wattsup' or 'model', "
                                    "got '"
                                 << meter << "'");
  spec.exact_meter = (meter == "model");
  if (cfg.has("faults")) {
    spec.fault_text = *cfg.get("faults");
    (void)spec.faults();  // validate now, at parse time
  }
  spec.granularity = parse_granularity(cfg.get_string("granularity", "task"));
  return spec;
}

}  // namespace

harness::FaultSpec CampaignSpec::faults() const {
  TGI_REQUIRE(faulted(), "entry [" << name << "] has no fault spec");
  return harness::parse_fault_spec(fault_text);
}

const char* spec_mode(const CampaignSpec& spec) {
  return spec.faulted() ? "robust" : "plain";
}

harness::RobustConfig spec_robust_config(const CampaignSpec& spec) {
  harness::RobustConfig robust;
  // Mirrors tgi_sweep: repeated bit-identical samples are suspicious on
  // the noisy WattsUp simulation, legitimate on ModelMeter's flat phases.
  if (!spec.exact_meter) robust.stuck_run_limit = 8;
  return robust;
}

std::string canonical_spec_text(const CampaignSpec& spec) {
  const harness::SuiteConfig suite;
  if (spec.faulted()) {
    const harness::FaultSpec faults = spec.faults();
    return harness::cache_spec_text(spec.cluster, spec.seed, spec.exact_meter,
                                    suite, &faults,
                                    spec_robust_config(spec).stuck_run_limit,
                                    spec.sweep);
  }
  return harness::cache_spec_text(spec.cluster, spec.seed, spec.exact_meter,
                                  suite, nullptr, 0, spec.sweep);
}

std::uint64_t spec_hash(const CampaignSpec& spec) {
  return harness::journal_spec_hash(canonical_spec_text(spec));
}

std::string reference_spec_text(const CampaignSpec& spec) {
  const harness::SuiteConfig suite;
  // Reference meters get the +1 seed salt (tgi_sweep's make_meter(1)), and
  // the marker line separates the reference keyspace from plain sweeps.
  return "reference=1\n" +
         harness::cache_spec_text(
             spec.reference, spec.seed + 1, spec.exact_meter, suite, nullptr,
             0, {spec.reference.total_cores()});
}

std::uint64_t reference_spec_hash(const CampaignSpec& spec) {
  return harness::journal_spec_hash(reference_spec_text(spec));
}

std::vector<CampaignSpec> parse_campaign(const std::string& text,
                                         const std::string& base_dir) {
  std::vector<CampaignSpec> entries;
  std::set<std::string> names;
  std::string section_name;
  std::string section_text;
  bool in_section = false;

  const auto flush = [&entries, &names, &section_name, &section_text,
                      &base_dir, &in_section]() {
    if (!in_section) return;
    entries.push_back(build_entry(section_name,
                                  util::Config::parse(section_text),
                                  base_dir));
    TGI_REQUIRE(names.insert(section_name).second,
                "duplicate campaign entry name [" << section_name << "]");
    section_text.clear();
  };

  std::istringstream lines(text);
  std::string raw;
  while (std::getline(lines, raw)) {
    const std::string line = trim(raw);
    if (line.empty() || line[0] == '#') continue;
    if (line.front() == '[') {
      TGI_REQUIRE(line.back() == ']',
                  "malformed campaign section header: " << line);
      flush();
      section_name = trim(line.substr(1, line.size() - 2));
      in_section = true;
      continue;
    }
    TGI_REQUIRE(in_section, "campaign line before any [entry] section: "
                                << line);
    section_text += line;
    section_text += '\n';
  }
  flush();
  TGI_REQUIRE(!entries.empty(), "campaign file has no [entry] sections");
  return entries;
}

std::vector<CampaignSpec> load_campaign_file(const std::string& path) {
  const std::string text = read_text_file(path, "campaign file");
  return parse_campaign(
      text, std::filesystem::path(path).parent_path().string());
}

std::string worker_spec_config(const CampaignSpec& spec,
                               const std::string& cluster_path) {
  std::string text;
  text += "cluster = " + cluster_path + "\n";
  std::string sweep;
  for (const std::size_t value : spec.sweep) {
    if (!sweep.empty()) sweep += ',';
    sweep += std::to_string(value);
  }
  text += "sweep = " + sweep + "\n";
  text += "seed = " + std::to_string(spec.seed) + "\n";
  text += "meter = " + std::string(spec.exact_meter ? "model" : "wattsup") +
          "\n";
  if (spec.faulted()) text += "faults = " + spec.fault_text + "\n";
  text += "granularity = " +
          std::string(spec.granularity == harness::SweepGranularity::kTask
                          ? "task"
                          : "point") +
          "\n";
  return text;
}

CampaignSpec load_worker_spec(const std::string& path) {
  const std::string text = read_text_file(path, "worker spec file");
  const util::Config cfg = util::Config::parse(text);
  util::require_known_keys(
      cfg, {"cluster", "sweep", "seed", "meter", "faults", "granularity"},
      "worker spec " + path);
  TGI_REQUIRE(cfg.has("cluster"),
              "worker spec " << path << " needs cluster=PATH");
  util::Config entry;
  for (const std::string& key : cfg.keys()) entry.set(key, *cfg.get(key));
  return build_entry("worker", entry,
                     std::filesystem::path(path).parent_path().string());
}

}  // namespace tgi::serve
