// serve::Supervisor — deterministic worker-process supervision
// (DESIGN.md §15).
//
// The campaign engine's process-failure story used to stop at "a dead
// worker WARNs and heals in-process": a *hung* worker blocked the campaign
// forever in a blocking wait(), and a crash-looping shard was retried zero
// times. The Supervisor closes that gap with the same policy shape the
// in-process robustness layer (harness/robust.h) gives measurements:
//
//   - progress watchdog: a shard counts as hung after `stall_polls`
//     supervision polls with NO growth of its journal file. The deadline
//     is progress-based — ticks without a journaled byte — never a
//     wall-clock read, so no published number can ever depend on timing;
//   - escalation: a hung worker gets SIGTERM, `grace_polls` ticks to
//     comply, then SIGKILL;
//   - bounded restarts: every failed attempt (signal, nonzero exit, hang,
//     or a clean exit that left points unjournaled — trust is
//     journal-driven, never exit-status-driven) is a strike. Up to
//     `max_restarts` restarts recompute ONLY the still-missing indices;
//     each restart charges accounted (never slept) exponential backoff,
//     base * 2^(r-1), mirroring RobustConfig;
//   - crash-loop quarantine: a shard that exhausts its budget is
//     quarantined — its remaining points fall back to the engine's
//     deterministic in-process compute, the existing heal path.
//
// Exit-status taxonomy (clean / signal / nonzero / hung / quarantined)
// goes to stderr and provenance.json, NEVER stdout: because the cache
// banks every journaled point and restarts recompute only the missing
// suffix, the final artifacts stay byte-identical to an undisturbed run at
// every worker/thread count, and the report stream must not betray how
// rough the road was.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "harness/checkpoint.h"
#include "util/units.h"

namespace tgi::serve {

/// Supervision policy knobs (CLI: restarts=, stall_polls=).
struct SupervisorConfig {
  /// Restarts per shard after the first attempt (attempts = 1 + this).
  std::size_t max_restarts = 2;
  /// Supervision polls (~2 ms apart) without journal growth before a
  /// live worker counts as hung. Progress-based, not wall-clock: a slow
  /// but journaling worker never trips it.
  std::size_t stall_polls = 15000;
  /// Polls between SIGTERM and SIGKILL for a hung worker.
  std::size_t grace_polls = 250;
  /// Accounted exponential backoff per restart: base * 2^(r-1), charged
  /// to the shard's account, never slept (mirrors RobustConfig).
  util::Seconds backoff_base{5.0};

  void validate() const;
};

/// How one attempt (or the whole shard) ended.
enum class ShardOutcome {
  kClean,        ///< exit 0 with every assigned point journaled
  kSignal,       ///< killed by a signal (its own, or the fault plane's)
  kNonzero,      ///< exited with a nonzero code
  kHung,         ///< stalled past the watchdog; SIGTERM→SIGKILL escalation
  kQuarantined,  ///< restart budget exhausted; fell back to in-process
};

[[nodiscard]] const char* outcome_name(ShardOutcome outcome);

/// One spawn of one shard's worker.
struct ShardAttempt {
  std::size_t attempt = 0;  ///< 1-based
  ShardOutcome outcome = ShardOutcome::kClean;
  std::string detail;      ///< ExitStatus::describe() / stall description
  std::size_t banked = 0;  ///< records this attempt's journal contributed
  bool failed = false;     ///< counted as a strike
};

/// The supervision record for one shard — the taxonomy that reaches
/// stderr and provenance.json.
struct ShardReport {
  std::size_t shard = 0;
  std::vector<ShardAttempt> attempts;
  ShardOutcome outcome = ShardOutcome::kClean;
  std::size_t restarts = 0;
  util::Seconds backoff{0.0};  ///< accounted, never slept

  [[nodiscard]] bool quarantined() const {
    return outcome == ShardOutcome::kQuarantined;
  }
};

/// One shard's work order. The supervisor owns attempt directories
/// (`dir`/attempt<k>, journal + worker.out/err inside) and re-invokes
/// `argv` over the still-missing indices on each restart.
struct ShardJob {
  std::size_t shard = 0;
  std::string label;  ///< for log lines, e.g. "[alpha]"
  /// Global sweep indices assigned to this shard (strictly increasing).
  std::vector<std::size_t> indices;
  /// Scratch root for this shard's attempt directories.
  std::string dir;
  /// Builds the worker argv for one attempt over `remaining` indices,
  /// journaling into `journal_dir`. The supervisor additionally exports
  /// TGI_SERVE_WORKER_ATTEMPT=<attempt> to the child.
  std::function<std::vector<std::string>(
      const std::vector<std::size_t>& remaining,
      const std::string& journal_dir, std::size_t attempt)>
      argv;
  /// Reads + reconciles one attempt's journal, returning its valid
  /// records (damage is the callee's to count and WARN about).
  std::function<std::map<std::size_t, harness::PointRecord>(
      const std::string& journal_path)>
      merge;
};

/// One supervised shard's outcome: every banked record (attempts merged
/// in attempt order — deterministic, and immaterial to bytes since a
/// point's record is identical whichever attempt computed it) plus the
/// taxonomy report.
struct SupervisedShard {
  std::map<std::size_t, harness::PointRecord> records;
  ShardReport report;
};

class Supervisor {
 public:
  explicit Supervisor(SupervisorConfig config);

  /// Runs every job's worker concurrently, supervising all of them in one
  /// poll loop, until each shard either journals its full assignment or
  /// is quarantined. Results are indexed like `jobs`; the caller folds
  /// records in fixed shard order.
  [[nodiscard]] std::vector<SupervisedShard> run(
      const std::vector<ShardJob>& jobs);

  [[nodiscard]] const SupervisorConfig& config() const { return config_; }

 private:
  SupervisorConfig config_;
};

}  // namespace tgi::serve
