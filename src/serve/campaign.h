// The campaign engine (DESIGN.md §13): many sweep specs in, deduplicated
// through the content-addressed result cache, cache misses sharded across
// worker processes, every artifact byte-identical to a cold serial run.
//
// Execution of one entry:
//   1. look the spec's shard up in the ResultCache — valid records are
//      cache hits, damaged ones are quarantined (WARN) and become misses;
//   2. shard the missing GLOBAL indices round-robin across `workers`
//      `tgi_serve --worker` processes (0 = compute in-process), each
//      journaling into its own scratch directory;
//   3. supervise every shard through serve::Supervisor (DESIGN.md §15):
//      a progress watchdog SIGTERM→SIGKILLs hung workers, failed attempts
//      (signal / nonzero / hang / clean-but-incomplete journal) are WARNed
//      and restarted over ONLY the still-missing indices with accounted
//      exponential backoff, and a crash-looping shard is quarantined.
//      Attempt journals merge in FIXED SHARD-then-ATTEMPT ORDER (first
//      valid record per index wins — order only matters for damage
//      accounting, since a point's record bytes are identical whichever
//      worker computed them); whatever a quarantined shard still owes is
//      recomputed in-process — the campaign self-heals;
//   4. publish hits ∪ fresh records back to the cache atomically, then
//      re-read the shard and emit ONLY from the decoded records. Cold and
//      warm runs therefore run the identical emission code on identical
//      bytes — byte-identical stdout/CSVs/trace.json is structural, not
//      incidental;
//   5. the entry's reference run is cached the same way under its own key
//      (reference_spec_text), so repeated reference machines across
//      entries and campaigns are hits too.
//
// Cache-dependent facts (hit/miss counts, worker failures, quarantines)
// never reach the report stream: they go to stderr and to
// outdir/provenance.json, which — like checkpoint resume.json — is
// excluded from all byte comparisons.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "serve/spec.h"
#include "serve/supervisor.h"

namespace tgi::serve {

struct CampaignConfig {
  /// Result cache directory (shards + worker scratch live here).
  std::string cache_dir;
  /// Output directory: one subdirectory per entry + provenance.json.
  std::string outdir;
  /// Worker processes per entry's miss set; 0 = compute in-process.
  std::size_t workers = 0;
  /// Sweep threads per compute (in-process and per worker); 0 = ThreadPool
  /// default, 1 = serial.
  std::size_t threads = 1;
  /// Worker executable (tgi_serve); required when workers > 0.
  std::string worker_exe;
  /// Write per-entry trace/trace.json + trace/metrics.csv (DESIGN.md §10),
  /// rebuilt from the journaled observability sections.
  bool trace = false;
  /// Worker supervision policy (DESIGN.md §15): progress watchdog, bounded
  /// restarts with accounted backoff, crash-loop quarantine.
  SupervisorConfig supervisor;
};

/// What a campaign run did. `computed` is the recompute counter the hit-
/// semantics tests pin to zero on a warm cache.
struct CampaignStats {
  std::size_t entries = 0;
  std::size_t points = 0;           ///< sweep points + reference runs
  std::size_t cache_hits = 0;       ///< served from the cache
  std::size_t computed = 0;         ///< actually recomputed this run
  std::size_t quarantined = 0;      ///< damaged cache/journal records
  std::size_t worker_failures = 0;  ///< failed worker attempts (any strike)
  std::size_t worker_restarts = 0;  ///< supervised restarts performed
  std::size_t worker_hangs = 0;     ///< attempts killed by the watchdog
  std::size_t worker_quarantined = 0;  ///< shards that exhausted restarts

  [[nodiscard]] std::string summary() const;
};

class CampaignEngine {
 public:
  explicit CampaignEngine(CampaignConfig config);

  /// Runs the campaign. The human-readable report goes to `out` and is
  /// byte-identical for every thread count, worker count, and cache state;
  /// per-entry artifacts land under outdir/<entry>/. Returns the run's
  /// stats (also written to outdir/provenance.json).
  CampaignStats run(const std::vector<CampaignSpec>& entries,
                    std::ostream& out);

  [[nodiscard]] const CampaignConfig& config() const { return config_; }

 private:
  CampaignConfig config_;
};

}  // namespace tgi::serve
