// The campaign worker: computes an assigned subset of one spec's sweep
// points and journals them (DESIGN.md §13).
//
// A worker — whether a `tgi_serve --worker` shard process or the engine's
// in-process fallback — is handed GLOBAL point indices. It must reproduce
// exactly the bytes ParallelSweep would have produced for those indices in
// a full sweep: meters are built from the global index (WattsUp run_offset
// = k * measurements_per_point), fault and robust streams key on the
// global index, recorders are preallocated for the FULL value list so the
// task-graph path can address them, and every completed point is appended
// to a fresh CheckpointJournal in `journal_dir` — the engine merges shard
// journals in fixed shard order and banks the records in the result cache.
// Because the journal record is the canonical byte representation, a
// worker's output is granularity- and thread-count-invariant by the same
// §3b/§12 arguments the sweep engine carries.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "serve/spec.h"

namespace tgi::serve {

/// One worker's work order.
struct WorkerAssignment {
  /// Global sweep-point indices to compute; strictly increasing.
  std::vector<std::size_t> indices;
  /// Directory for the worker's journal (journal.tgij inside).
  std::string journal_dir;
  /// Sweep threads (0 = ThreadPool default, 1 = serial).
  std::size_t threads = 1;

  // Deterministic process-fault hooks (DESIGN.md §15, ci.sh stages 10/12):
  // each fires after journaling exactly that many points, so "N points
  // then the fault" is a precise statement about what's on disk. Any armed
  // hook forces the serial point-granularity path (records are
  // granularity-invariant, so the journal bytes are unchanged). 0 = off.
  /// Raise SIGKILL — a real mid-campaign kill, no sleep-and-poll raciness.
  std::size_t die_after = 0;
  /// Stop journaling and ignore SIGTERM forever: exercises the
  /// supervisor's progress watchdog and its SIGTERM→SIGKILL escalation.
  std::size_t hang_after = 0;
  /// _Exit(3) — a nonzero exit with the journal intact up to this point.
  std::size_t exit_after = 0;
  /// Append a torn garbage record (no trailing newline) to the journal,
  /// then _Exit(0): a CLEAN exit with an incomplete, damaged journal.
  /// Proves supervision trust is journal-driven, never exit-status-driven.
  std::size_t garbage_after = 0;
};

/// Computes the assignment and returns the number of points journaled.
/// With a process-fault hook armed this call may not return at all.
std::size_t run_worker(const CampaignSpec& spec, const WorkerAssignment& a);

}  // namespace tgi::serve
