#include "serve/worker.h"

#include <csignal>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <utility>

#include <unistd.h>

#include "harness/checkpoint.h"
#include "harness/parallel.h"
#include "harness/robust.h"
#include "harness/suite.h"
#include "harness/taskgraph.h"
#include "power/meter.h"
#include "util/error.h"
#include "util/thread_pool.h"

namespace tgi::serve {

namespace {

/// Mirrors tgi_sweep's make_meter(0): the sweep meter factory with the
/// engine-wide per-point stride.
harness::MeterFactory point_meter_factory(const CampaignSpec& spec,
                                          std::size_t stride) {
  if (spec.exact_meter) {
    return harness::model_meter_factory(util::seconds(0.5));
  }
  power::WattsUpConfig wcfg;
  wcfg.seed = spec.seed;
  return harness::wattsup_meter_factory(wcfg, stride);
}

/// True when any deterministic process-fault hook is armed (DESIGN.md
/// §15); an armed hook forces the serial assignment-order path.
bool fault_hook_armed(const WorkerAssignment& a) {
  return a.die_after > 0 || a.hang_after > 0 || a.exit_after > 0 ||
         a.garbage_after > 0;
}

/// Fires whichever process-fault hook has come due after `done` points
/// were journaled; returns only when none has.
void maybe_fire_fault_hook(const WorkerAssignment& a, std::size_t done) {
  if (a.die_after > 0 && done >= a.die_after) std::raise(SIGKILL);
  if (a.exit_after > 0 && done >= a.exit_after) std::_Exit(3);
  if (a.hang_after > 0 && done >= a.hang_after) {
    // Stop journaling but refuse SIGTERM: the only way this process ends
    // is the supervisor's watchdog escalating to SIGKILL.
    std::signal(SIGTERM, SIG_IGN);
    for (;;) ::pause();
  }
  if (a.garbage_after > 0 && done >= a.garbage_after) {
    // Tear the journal the way a crash mid-append would — a record with
    // no trailing newline — then exit CLEAN. The journal reader
    // quarantines the torn tail and the supervisor still strikes the
    // shard for its missing points: trust is journal-driven, never
    // exit-status-driven. Deliberate raw append, like the journal's own
    // handle.
    std::ofstream tail(  // tgi-lint: allow(nonatomic-output-write)
        a.journal_dir + "/journal.tgij", std::ios::binary | std::ios::app);
    tail << "TGIJ1 point deadbeef {\"torn\":";
    tail.flush();
    std::_Exit(0);
  }
}

/// Runs body(0 .. count-1) with the engine's execution discipline: inline
/// when serial, else the sanctioned pool.
void execute_assignment(std::size_t count, std::size_t threads,
                        const std::function<void(std::size_t)>& body) {
  if (threads == 0) threads = util::ThreadPool::default_thread_count();
  if (threads <= 1 || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  util::ThreadPool pool(threads < count ? threads : count);
  util::parallel_for(pool, count, body);
}

}  // namespace

std::size_t run_worker(const CampaignSpec& spec, const WorkerAssignment& a) {
  const std::vector<std::size_t>& values = spec.sweep;
  TGI_REQUIRE(!a.indices.empty(), "worker assignment is empty");
  for (std::size_t i = 0; i < a.indices.size(); ++i) {
    TGI_REQUIRE(a.indices[i] < values.size(),
                "worker index " << a.indices[i] << " is outside the sweep");
    TGI_REQUIRE(i == 0 || a.indices[i - 1] < a.indices[i],
                "worker indices must be strictly increasing");
  }
  TGI_REQUIRE(!a.journal_dir.empty(), "worker needs a journal directory");

  const std::string mode = spec_mode(spec);
  harness::CheckpointConfig ccfg;
  ccfg.directory = a.journal_dir;
  ccfg.resume = false;
  harness::CheckpointJournal journal(std::move(ccfg), spec_hash(spec), mode,
                                     values);

  // Full preallocation, global labels — exactly ParallelSweep's
  // make_recorders, so a shard's trace section is byte-identical to the
  // record an unsharded sweep would journal for the same point.
  std::vector<obs::PointRecorder> recorders;
  recorders.reserve(values.size());
  for (std::size_t k = 0; k < values.size(); ++k) {
    recorders.emplace_back(k, std::to_string(values[k]));
  }

  const harness::SuiteConfig suite;

  if (spec.faulted()) {
    const harness::FaultSpec fspec = spec.faults();
    const harness::FaultPlan plan(fspec);
    const harness::RobustConfig robust = spec_robust_config(spec);
    const harness::MeterFactory factory = point_meter_factory(
        spec, harness::robust_measurements_per_point(suite, robust));
    std::vector<harness::RobustSuitePoint> results(values.size());
    const auto run_point = [&spec, &a, &values, &recorders, &results, &plan,
                            &robust, &suite, &factory,
                            &journal](std::size_t i) {
      const std::size_t k = a.indices[i];
      const std::unique_ptr<power::PowerMeter> meter = factory(k);
      harness::RobustSuiteRunner runner(spec.cluster, *meter, plan, robust,
                                        suite, k);
      runner.attach_recorder(&recorders[k]);
      results[k] = runner.run_suite(values[k]);
      journal.record(harness::make_robust_point_record(k, values[k],
                                                       results[k],
                                                       &recorders[k]));
    };
    if (fault_hook_armed(a)) {
      // Serial, in assignment order: "journaled N then faulted" must mean
      // exactly the first N records are on disk.
      for (std::size_t i = 0; i < a.indices.size(); ++i) {
        run_point(i);
        maybe_fire_fault_hook(a, i + 1);
      }
    } else if (spec.granularity == harness::SweepGranularity::kTask) {
      harness::ParallelSweepConfig cfg;
      cfg.suite = suite;
      cfg.threads = a.threads;
      cfg.checkpoint = &journal;
      cfg.granularity = harness::SweepGranularity::kTask;
      const harness::TaskSweepInputs inputs{spec.cluster, cfg,       factory,
                                            values,       a.indices, recorders,
                                            &journal};
      run_robust_task_graph(inputs, plan, robust, results);
    } else {
      execute_assignment(a.indices.size(), a.threads, run_point);
    }
    journal.finalize();
    return a.indices.size();
  }

  const harness::MeterFactory factory =
      point_meter_factory(spec, harness::suite_benchmarks(suite).size());
  std::vector<harness::SuitePoint> results(values.size());
  const auto run_point = [&spec, &a, &values, &recorders, &results, &suite,
                          &factory, &journal](std::size_t i) {
    const std::size_t k = a.indices[i];
    const std::unique_ptr<power::PowerMeter> meter = factory(k);
    harness::SuiteRunner runner(spec.cluster, *meter, suite);
    runner.attach_recorder(&recorders[k]);
    results[k] = runner.run_suite(values[k]);
    journal.record(
        harness::make_point_record(k, values[k], results[k], &recorders[k]));
  };
  if (fault_hook_armed(a)) {
    for (std::size_t i = 0; i < a.indices.size(); ++i) {
      run_point(i);
      maybe_fire_fault_hook(a, i + 1);
    }
  } else if (spec.granularity == harness::SweepGranularity::kTask) {
    harness::ParallelSweepConfig cfg;
    cfg.suite = suite;
    cfg.threads = a.threads;
    cfg.checkpoint = &journal;
    cfg.granularity = harness::SweepGranularity::kTask;
    if (spec.exact_meter) {
      cfg.task_meters = harness::model_task_meter_factory(util::seconds(0.5));
    } else {
      power::WattsUpConfig wcfg;
      wcfg.seed = spec.seed;
      cfg.task_meters = harness::wattsup_task_meter_factory(
          wcfg, harness::suite_benchmarks(suite).size());
    }
    const harness::TaskSweepInputs inputs{spec.cluster, cfg,       factory,
                                          values,       a.indices, recorders,
                                          &journal};
    run_plain_task_graph(inputs, /*extended=*/false, results);
  } else {
    execute_assignment(a.indices.size(), a.threads, run_point);
  }
  journal.finalize();
  return a.indices.size();
}

}  // namespace tgi::serve
