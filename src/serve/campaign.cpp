#include "serve/campaign.h"

#include <cstdio>
#include <filesystem>
#include <map>
#include <memory>
#include <ostream>
#include <utility>

#include "core/tgi.h"
#include "harness/cache.h"
#include "harness/checkpoint.h"
#include "harness/measurement_io.h"
#include "harness/suite.h"
#include "obs/trace.h"
#include "power/meter.h"
#include "serve/supervisor.h"
#include "serve/worker.h"
#include "sim/spec_io.h"
#include "util/atomic_file.h"
#include "util/error.h"
#include "util/format.h"
#include "util/log.h"
#include "util/table.h"

namespace tgi::serve {

namespace {

using harness::PointRecord;

std::string hash_hex(std::uint64_t hash) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(hash));
  return std::string(buffer);
}

std::string join_indices(const std::vector<std::size_t>& indices) {
  std::string text;
  for (const std::size_t index : indices) {
    if (!text.empty()) text += ',';
    text += std::to_string(index);
  }
  return text;
}

/// Reads a worker journal and returns its valid records for this spec.
/// Damage (including a torn tail from a SIGKILLed worker, or a missing
/// file from one that died before the header) is counted, WARNed, and
/// treated as absence — the caller recomputes whatever is missing.
std::map<std::size_t, PointRecord> merge_journal(
    const std::string& journal_path, std::uint64_t hash,
    const std::string& mode, const std::vector<std::size_t>& values,
    CampaignStats& stats) {
  std::map<std::size_t, PointRecord> records;
  std::error_code ec;
  if (!std::filesystem::exists(journal_path, ec) || ec) return records;
  std::vector<harness::JournalDamage> damage;
  try {
    const harness::JournalContents contents =
        harness::read_journal_file(journal_path);
    harness::JournalState state =
        harness::reconcile_journal(contents, hash, mode, values);
    records = std::move(state.completed);
    damage = std::move(state.damage);
  } catch (const util::TgiError& ex) {
    damage.push_back(harness::JournalDamage{
        0, std::string("worker journal rejected: ") + ex.what()});
  }
  for (const harness::JournalDamage& d : damage) {
    TGI_LOG_WARN("serve: quarantined worker record (" << journal_path
                                                      << " line " << d.line
                                                      << "): " << d.reason);
  }
  stats.quarantined += damage.size();
  return records;
}

/// Computes the entry's reference point (tgi_sweep's make_meter(1) +
/// reference_measurements, wrapped as a journal record so it can ride the
/// cache like any sweep point).
PointRecord compute_reference_record(const CampaignSpec& spec) {
  std::unique_ptr<power::PowerMeter> meter;
  if (spec.exact_meter) {
    meter = std::make_unique<power::ModelMeter>(util::seconds(0.5));
  } else {
    power::WattsUpConfig wcfg;
    wcfg.seed = spec.seed + 1;
    meter = std::make_unique<power::WattsUpMeter>(wcfg);
  }
  const std::size_t cores = spec.reference.total_cores();
  obs::PointRecorder recorder(0, std::to_string(cores));
  harness::SuitePoint point;
  point.processes = cores;
  point.nodes = spec.reference.nodes;
  point.measurements =
      harness::reference_measurements(spec.reference, *meter, {}, &recorder);
  return harness::make_point_record(0, cores, point, &recorder);
}

}  // namespace

std::string CampaignStats::summary() const {
  return "entries=" + std::to_string(entries) +
         " points=" + std::to_string(points) +
         " hits=" + std::to_string(cache_hits) +
         " computed=" + std::to_string(computed) +
         " quarantined=" + std::to_string(quarantined) +
         " worker_failures=" + std::to_string(worker_failures) +
         " worker_restarts=" + std::to_string(worker_restarts) +
         " worker_hangs=" + std::to_string(worker_hangs) +
         " worker_quarantined=" + std::to_string(worker_quarantined);
}

CampaignEngine::CampaignEngine(CampaignConfig config)
    : config_(std::move(config)) {
  TGI_REQUIRE(!config_.cache_dir.empty(), "campaign needs cache_dir");
  TGI_REQUIRE(!config_.outdir.empty(), "campaign needs outdir");
  TGI_REQUIRE(config_.workers == 0 || !config_.worker_exe.empty(),
              "workers > 0 needs a worker executable");
}

namespace {

/// Per-entry provenance, accumulated for outdir/provenance.json.
struct EntryProvenance {
  std::string name;
  std::uint64_t spec;
  std::uint64_t reference_spec;
  std::size_t points;
  std::size_t hits;
  std::size_t computed;
  std::vector<ShardReport> shards;  ///< supervision taxonomy, workers > 0
};

/// Shards `pending` round-robin and runs one supervised `tgi_serve
/// --worker` per non-empty shard (serve::Supervisor, DESIGN.md §15):
/// hung workers are killed, failed attempts are restarted over the
/// still-missing indices, crash-looping shards are quarantined. Attempt
/// journals merge per shard in attempt order; shards fold in fixed shard
/// order (first valid record per index wins).
std::map<std::size_t, PointRecord> run_worker_shards(
    const CampaignConfig& config, const CampaignSpec& spec,
    std::uint64_t hash, const std::string& mode,
    const std::vector<std::size_t>& pending, const std::string& scratch,
    CampaignStats& stats, std::vector<ShardReport>& reports) {
  std::vector<std::vector<std::size_t>> shards(config.workers);
  for (std::size_t i = 0; i < pending.size(); ++i) {
    shards[i % config.workers].push_back(pending[i]);
  }
  const std::string cluster_path = scratch + "/cluster.conf";
  const std::string spec_path = scratch + "/spec.conf";
  std::filesystem::create_directories(scratch);
  util::atomic_write_file(cluster_path, sim::cluster_to_config(spec.cluster));
  // The handoff names the cluster file relative to the spec file's own
  // directory (load_worker_spec resolves it there) — relocatable scratch.
  util::atomic_write_file(spec_path, worker_spec_config(spec, "cluster.conf"));

  std::vector<ShardJob> jobs;
  for (std::size_t s = 0; s < shards.size(); ++s) {
    if (shards[s].empty()) continue;
    ShardJob job;
    job.shard = s;
    job.label = "[" + spec.name + "]";
    job.indices = shards[s];
    job.dir = scratch + "/shard" + std::to_string(s);
    const std::string worker_exe = config.worker_exe;
    const std::size_t threads = config.threads;
    job.argv = [worker_exe, spec_path, threads, s](
                   const std::vector<std::size_t>& remaining,
                   const std::string& journal_dir, std::size_t) {
      return std::vector<std::string>{
          worker_exe,
          "--worker",
          "spec=" + spec_path,
          "indices=" + join_indices(remaining),
          "journal=" + journal_dir,
          "threads=" + std::to_string(threads),
          "shard=" + std::to_string(s)};
    };
    job.merge = [hash, &mode, &spec,
                 &stats](const std::string& journal_path) {
      return merge_journal(journal_path, hash, mode, spec.sweep, stats);
    };
    jobs.push_back(std::move(job));
  }

  Supervisor supervisor(config.supervisor);
  std::vector<SupervisedShard> supervised = supervisor.run(jobs);

  std::map<std::size_t, PointRecord> merged;
  for (SupervisedShard& shard : supervised) {
    for (auto& [index, record] : shard.records) {
      merged.emplace(index, std::move(record));
    }
    for (const ShardAttempt& attempt : shard.report.attempts) {
      if (attempt.failed) ++stats.worker_failures;
      if (attempt.outcome == ShardOutcome::kHung) ++stats.worker_hangs;
    }
    stats.worker_restarts += shard.report.restarts;
    if (shard.report.quarantined()) ++stats.worker_quarantined;
    reports.push_back(std::move(shard.report));
  }
  return merged;
}

/// Writes one entry's artifacts and report lines from DECODED cache
/// records only — the single emission path both cold and warm runs share.
/// Report lines carry the entry name, never a filesystem path, so the
/// report stream is byte-stable across output directories.
void emit_entry(const CampaignConfig& config, const CampaignSpec& entry,
                const std::map<std::size_t, PointRecord>& records,
                const PointRecord& reference, std::ostream& out) {
  const std::string dir = config.outdir + "/" + entry.name;
  std::filesystem::create_directories(dir);
  out << "[" << entry.name << "] system: " << entry.cluster.name << " ("
      << entry.cluster.total_cores()
      << " cores), reference: " << entry.reference.name << "\n";
  harness::write_measurements_file(dir + "/reference.csv",
                                   reference.point.measurements);
  const core::TgiCalculator calc(reference.point.measurements);

  std::size_t measurement_csvs = 1;  // reference.csv
  if (entry.faulted()) {
    util::AtomicFile fault_file(dir + "/faults_summary.csv");
    util::CsvWriter fcsv(fault_file.stream());
    fcsv.write_row({"cores", "tgi_am", "missing", "attempts", "retries",
                    "run_faults", "meter_faults", "rejected_readings",
                    "dropped_benchmarks", "backoff_s", "stalled_s"});
    for (std::size_t k = 0; k < entry.sweep.size(); ++k) {
      const PointRecord& record = records.at(k);
      std::string missing;
      for (const std::string& name : record.missing) {
        if (!missing.empty()) missing += '+';
        missing += name;
      }
      std::string tgi_am = "nan";
      if (!record.point.measurements.empty()) {
        const core::PartialTgiResult partial = calc.compute_partial(
            record.point.measurements, core::WeightScheme::kArithmeticMean);
        tgi_am = util::fixed(partial.result.tgi, 6);
        harness::write_measurements_file(
            dir + "/point_" + std::to_string(entry.sweep[k]) + ".csv",
            record.point.measurements);
        ++measurement_csvs;
      }
      const harness::PointCounters& c = record.counters;
      fcsv.write_row({std::to_string(entry.sweep[k]), tgi_am, missing,
                      std::to_string(c.attempts), std::to_string(c.retries),
                      std::to_string(c.run_faults),
                      std::to_string(c.meter_faults),
                      std::to_string(c.rejected_readings),
                      std::to_string(c.dropped_benchmarks),
                      util::fixed(c.backoff.value(), 1),
                      util::fixed(c.stalled.value(), 1)});
      out << "[" << entry.name << "] cores " << entry.sweep[k] << ": TGI(AM) "
          << tgi_am
          << (record.missing.empty() ? ""
                                     : " [partial: missing " + missing + "]")
          << " attempts=" << c.attempts << " retries=" << c.retries
          << " faults=" << c.run_faults + c.meter_faults << "\n";
    }
    fault_file.commit();
  } else {
    const std::vector<core::WeightScheme> schemes{
        core::WeightScheme::kArithmeticMean, core::WeightScheme::kTime,
        core::WeightScheme::kEnergy, core::WeightScheme::kPower};
    util::AtomicFile summary_file(dir + "/sweep_summary.csv");
    util::CsvWriter summary(summary_file.stream());
    summary.write_row({"cores", "tgi_am", "tgi_time", "tgi_energy",
                       "tgi_power", "hpl_mflops", "hpl_watts", "stream_mbps",
                       "stream_watts", "iozone_mbps", "iozone_watts"});
    for (std::size_t k = 0; k < entry.sweep.size(); ++k) {
      const PointRecord& record = records.at(k);
      harness::write_measurements_file(
          dir + "/point_" + std::to_string(entry.sweep[k]) + ".csv",
          record.point.measurements);
      ++measurement_csvs;
      std::vector<std::string> row{std::to_string(entry.sweep[k])};
      double tgi_am = 0.0;
      for (const core::WeightScheme scheme : schemes) {
        const double value =
            calc.compute(record.point.measurements, scheme).tgi;
        if (scheme == core::WeightScheme::kArithmeticMean) tgi_am = value;
        row.push_back(util::fixed(value, 6));
      }
      for (const char* name : {"HPL", "STREAM", "IOzone"}) {
        const core::BenchmarkMeasurement& m =
            core::find_measurement(record.point.measurements, name);
        row.push_back(util::fixed(m.performance, 3));
        row.push_back(util::fixed(m.average_power.value(), 3));
      }
      summary.write_row(row);
      out << "[" << entry.name << "] cores " << entry.sweep[k] << ": TGI(AM) "
          << util::fixed(tgi_am, 4) << "\n";
    }
    summary_file.commit();
  }

  if (config.trace) {
    std::vector<obs::PointRecorder> recorders;
    recorders.reserve(entry.sweep.size());
    for (std::size_t k = 0; k < entry.sweep.size(); ++k) {
      obs::PointRecorder recorder(k, std::to_string(entry.sweep[k]));
      harness::restore_recorder(records.at(k), recorder);
      recorders.push_back(std::move(recorder));
    }
    const obs::SweepTrace trace =
        obs::SweepTrace::merge(std::move(recorders));
    const std::string trace_dir = dir + "/trace";
    std::filesystem::create_directories(trace_dir);
    util::AtomicFile trace_json(trace_dir + "/trace.json");
    trace.write_chrome_trace(trace_json.stream());
    trace_json.commit();
    util::AtomicFile metrics(trace_dir + "/metrics.csv");
    trace.write_metrics_csv(metrics.stream());
    metrics.commit();
    out << "[" << entry.name << "] wrote trace (" << trace.event_count()
        << " events) and metrics\n";
  }
  out << "[" << entry.name << "] wrote "
      << (entry.faulted() ? "faults_summary.csv" : "sweep_summary.csv")
      << " and " << measurement_csvs << " measurement CSVs\n";
}

}  // namespace

CampaignStats CampaignEngine::run(const std::vector<CampaignSpec>& entries,
                                  std::ostream& out) {
  TGI_REQUIRE(!entries.empty(), "campaign has no entries");
  const harness::ResultCache cache(config_.cache_dir);
  CampaignStats stats;
  std::vector<EntryProvenance> provenance;
  std::filesystem::create_directories(config_.outdir);

  for (const CampaignSpec& entry : entries) {
    ++stats.entries;
    EntryProvenance prov;
    prov.name = entry.name;
    const std::uint64_t hash = spec_hash(entry);
    const std::string mode = spec_mode(entry);
    prov.spec = hash;
    const std::size_t hits_before = stats.cache_hits;
    const std::size_t computed_before = stats.computed;

    // 1. Cache lookup: valid records are hits, damage becomes misses.
    harness::CacheLookup cached = cache.lookup(hash, mode, entry.sweep);
    stats.quarantined += cached.damage.size();
    std::vector<std::size_t> pending;
    for (std::size_t k = 0; k < entry.sweep.size(); ++k) {
      if (!cached.hit(k)) pending.push_back(k);
    }
    stats.points += entry.sweep.size();
    stats.cache_hits += entry.sweep.size() - pending.size();

    // 2+3. Compute the misses: worker shards, then an in-process pass for
    // anything a dead worker left behind.
    std::map<std::size_t, PointRecord> records = std::move(cached.completed);
    if (!pending.empty()) {
      const std::string scratch =
          config_.cache_dir + "/work/" + entry.name;
      if (config_.workers > 0) {
        std::map<std::size_t, PointRecord> fresh = run_worker_shards(
            config_, entry, hash, mode, pending, scratch, stats,
            prov.shards);
        for (auto& [index, record] : fresh) {
          records.emplace(index, std::move(record));
        }
      }
      std::vector<std::size_t> missing;
      for (const std::size_t k : pending) {
        if (records.find(k) == records.end()) missing.push_back(k);
      }
      if (!missing.empty()) {
        WorkerAssignment local;
        local.indices = missing;
        local.journal_dir = scratch + "/local";
        local.threads = config_.threads;
        (void)run_worker(entry, local);
        std::map<std::size_t, PointRecord> fresh = merge_journal(
            local.journal_dir + "/journal.tgij", hash, mode, entry.sweep,
            stats);
        for (auto& [index, record] : fresh) {
          records.emplace(index, std::move(record));
        }
      }
      stats.computed += pending.size();
      // TGI_SERVE_KEEP_SCRATCH (env, debugging): keep worker spec files,
      // journals, and stderr captures instead of cleaning the scratch tree.
      if (std::getenv("TGI_SERVE_KEEP_SCRATCH") == nullptr) {
        std::error_code ec;
        std::filesystem::remove_all(scratch, ec);
      }
    }

    // 4. Publish, then re-read: emission consumes only decoded cache
    // bytes, so cold and warm runs emit from identical inputs.
    cache.store(hash, mode, entry.sweep, records);
    harness::CacheLookup final_state = cache.lookup(hash, mode, entry.sweep);
    for (std::size_t k = 0; k < entry.sweep.size(); ++k) {
      TGI_CHECK(final_state.hit(k), "campaign entry ["
                                        << entry.name << "] point " << k
                                        << " missing after compute");
    }

    // 5. Reference run, cached under its own key.
    const std::uint64_t ref_hash = reference_spec_hash(entry);
    prov.reference_spec = ref_hash;
    const std::vector<std::size_t> ref_values{
        entry.reference.total_cores()};
    ++stats.points;
    harness::CacheLookup ref_cached =
        cache.lookup(ref_hash, "plain", ref_values);
    stats.quarantined += ref_cached.damage.size();
    if (ref_cached.hit(0)) {
      ++stats.cache_hits;
    } else {
      std::map<std::size_t, PointRecord> ref_records;
      ref_records.emplace(0, compute_reference_record(entry));
      cache.store(ref_hash, "plain", ref_values, ref_records);
      ++stats.computed;
      ref_cached = cache.lookup(ref_hash, "plain", ref_values);
      stats.quarantined += ref_cached.damage.size();
    }
    TGI_CHECK(ref_cached.hit(0), "campaign entry ["
                                     << entry.name
                                     << "] reference missing after compute");

    emit_entry(config_, entry, final_state.completed,
               ref_cached.completed.at(0), out);
    prov.points = entry.sweep.size() + 1;
    prov.hits = stats.cache_hits - hits_before;
    prov.computed = stats.computed - computed_before;
    provenance.push_back(prov);
  }

  // Provenance: cache-dependent facts live here and on stderr, never in
  // the report stream (mirrors checkpoint resume.json).
  util::AtomicFile json(config_.outdir + "/provenance.json");
  json.stream() << "{\n  \"campaign\": {\"entries\": " << stats.entries
                << ", \"points\": " << stats.points << ", \"cache_hits\": "
                << stats.cache_hits << ", \"computed\": " << stats.computed
                << ", \"quarantined\": " << stats.quarantined
                << ", \"worker_failures\": " << stats.worker_failures
                << ", \"worker_restarts\": " << stats.worker_restarts
                << ", \"worker_hangs\": " << stats.worker_hangs
                << ", \"worker_quarantined\": " << stats.worker_quarantined
                << "},\n  \"entries\": [";
  for (std::size_t i = 0; i < provenance.size(); ++i) {
    const EntryProvenance& p = provenance[i];
    json.stream() << (i == 0 ? "\n" : ",\n") << "    {\"name\": \"" << p.name
                  << "\", \"spec\": \"" << hash_hex(p.spec)
                  << "\", \"reference_spec\": \""
                  << hash_hex(p.reference_spec) << "\", \"points\": "
                  << p.points << ", \"hits\": " << p.hits
                  << ", \"computed\": " << p.computed;
    // The supervision taxonomy (DESIGN.md §15) — like every other
    // cache/worker-dependent fact, it lives here and on stderr only.
    json.stream() << ", \"shards\": [";
    for (std::size_t s = 0; s < p.shards.size(); ++s) {
      const ShardReport& r = p.shards[s];
      json.stream() << (s == 0 ? "" : ", ") << "{\"shard\": " << r.shard
                    << ", \"outcome\": \"" << outcome_name(r.outcome)
                    << "\", \"restarts\": " << r.restarts
                    << ", \"backoff_s\": " << util::fixed(r.backoff.value(), 1)
                    << ", \"attempts\": [";
      for (std::size_t a = 0; a < r.attempts.size(); ++a) {
        const ShardAttempt& att = r.attempts[a];
        json.stream() << (a == 0 ? "" : ", ") << "{\"outcome\": \""
                      << outcome_name(att.outcome) << "\", \"detail\": \""
                      << att.detail << "\", \"banked\": " << att.banked
                      << "}";
      }
      json.stream() << "]}";
    }
    json.stream() << "]}";
  }
  json.stream() << "\n  ]\n}\n";
  json.commit();
  return stats;
}

}  // namespace tgi::serve
