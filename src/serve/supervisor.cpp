#include "serve/supervisor.h"

#include <csignal>
#include <ctime>
#include <filesystem>
#include <memory>
#include <utility>

#include "util/error.h"
#include "util/log.h"
#include "util/subprocess.h"

namespace tgi::serve {

namespace {

/// One supervision poll tick: 2 ms of nanosleep. Counting ticks is the
/// watchdog's only notion of time — it never reads a clock, and nothing
/// deterministic depends on how long a tick really took.
void sleep_poll_tick() {
  struct timespec ts;
  ts.tv_sec = 0;
  ts.tv_nsec = 2'000'000;
  ::nanosleep(&ts, nullptr);
}

/// Journal size in bytes; 0 while the worker has not created it yet.
std::uintmax_t journal_size(const std::string& path) {
  std::error_code ec;
  const std::uintmax_t size = std::filesystem::file_size(path, ec);
  return ec ? 0 : size;
}

/// Everything the poll loop tracks for one live shard.
struct ShardState {
  const ShardJob* job = nullptr;
  SupervisedShard result;
  std::size_t attempt = 0;  ///< 1-based; 0 = not yet spawned
  std::unique_ptr<util::Subprocess> child;
  std::string attempt_dir;
  std::uintmax_t last_size = 0;
  std::size_t stalled_polls = 0;
  std::size_t grace_polls = 0;
  bool escalating = false;  ///< SIGTERM sent, counting down to SIGKILL
  bool hung = false;        ///< this attempt tripped the watchdog
  bool done = false;
};

std::vector<std::size_t> missing_indices(const ShardState& state) {
  std::vector<std::size_t> remaining;
  for (const std::size_t index : state.job->indices) {
    if (state.result.records.find(index) == state.result.records.end()) {
      remaining.push_back(index);
    }
  }
  return remaining;
}

void spawn_attempt(ShardState& state) {
  ++state.attempt;
  state.attempt_dir =
      state.job->dir + "/attempt" + std::to_string(state.attempt);
  std::filesystem::create_directories(state.attempt_dir);
  util::SubprocessOptions options;
  options.stdout_path = state.attempt_dir + "/worker.out";
  options.stderr_path = state.attempt_dir + "/worker.err";
  options.extra_env.push_back("TGI_SERVE_WORKER_ATTEMPT=" +
                              std::to_string(state.attempt));
  std::vector<std::string> argv = state.job->argv(
      missing_indices(state), state.attempt_dir, state.attempt);
  state.child =
      std::make_unique<util::Subprocess>(std::move(argv), std::move(options));
  state.last_size = 0;
  state.stalled_polls = 0;
  state.grace_polls = 0;
  state.escalating = false;
  state.hung = false;
}

}  // namespace

const char* outcome_name(ShardOutcome outcome) {
  switch (outcome) {
    case ShardOutcome::kClean:
      return "clean";
    case ShardOutcome::kSignal:
      return "signal";
    case ShardOutcome::kNonzero:
      return "nonzero";
    case ShardOutcome::kHung:
      return "hung";
    case ShardOutcome::kQuarantined:
      return "quarantined";
  }
  return "clean";
}

void SupervisorConfig::validate() const {
  TGI_REQUIRE(max_restarts <= 16,
              "supervisor restart budget must be in [0, 16], got "
                  << max_restarts);
  TGI_REQUIRE(stall_polls >= 10 && stall_polls <= 1000000,
              "supervisor stall_polls must be in [10, 1000000], got "
                  << stall_polls);
  TGI_REQUIRE(grace_polls >= 1 && grace_polls <= 1000000,
              "supervisor grace_polls must be in [1, 1000000], got "
                  << grace_polls);
  TGI_REQUIRE(backoff_base.value() >= 0.0,
              "supervisor backoff_base must be >= 0");
}

Supervisor::Supervisor(SupervisorConfig config) : config_(config) {
  config_.validate();
}

std::vector<SupervisedShard> Supervisor::run(
    const std::vector<ShardJob>& jobs) {
  std::vector<ShardState> states(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    TGI_REQUIRE(!jobs[i].indices.empty(),
                "supervised shard " << jobs[i].shard << " has no indices");
    TGI_REQUIRE(jobs[i].argv && jobs[i].merge,
                "supervised shard needs argv and merge callbacks");
    states[i].job = &jobs[i];
    states[i].result.report.shard = jobs[i].shard;
    spawn_attempt(states[i]);
  }

  // Handles the end of one attempt: merge its journal, classify, and
  // either finish, restart over the missing suffix, or quarantine.
  const auto settle_attempt = [this](ShardState& state,
                                     const util::ExitStatus& status) {
    const ShardJob& job = *state.job;
    ShardAttempt attempt;
    attempt.attempt = state.attempt;

    std::size_t banked = 0;
    std::map<std::size_t, harness::PointRecord> records =
        job.merge(state.attempt_dir + "/journal.tgij");
    for (auto& [index, record] : records) {
      if (state.result.records.emplace(index, std::move(record)).second) {
        ++banked;
      }
    }
    attempt.banked = banked;
    const std::vector<std::size_t> remaining = missing_indices(state);

    if (state.hung) {
      attempt.outcome = ShardOutcome::kHung;
      attempt.detail = "no journal growth in " +
                       std::to_string(config_.stall_polls) +
                       " polls; killed (SIGTERM escalated to SIGKILL)";
      attempt.failed = true;
    } else if (!status.exited) {
      attempt.outcome = ShardOutcome::kSignal;
      attempt.detail = status.describe();
      attempt.failed = true;
    } else if (status.code != 0) {
      attempt.outcome = ShardOutcome::kNonzero;
      attempt.detail = status.describe();
      attempt.failed = true;
    } else if (!remaining.empty()) {
      // Trust is journal-driven, never exit-status-driven: a clean exit
      // that left points unjournaled is still a strike.
      attempt.outcome = ShardOutcome::kClean;
      attempt.detail = "clean exit but " + std::to_string(remaining.size()) +
                       " assigned points missing from the journal";
      attempt.failed = true;
    } else {
      attempt.outcome = ShardOutcome::kClean;
      attempt.detail = status.describe();
    }

    if (attempt.failed) {
      TGI_LOG_WARN("serve: worker shard "
                   << job.shard << " for " << job.label << " "
                   << (attempt.outcome == ShardOutcome::kHung
                           ? "hung (" + attempt.detail + ")"
                           : "died (" + attempt.detail + ")")
                   << "; merging its partial journal (stderr: "
                   << state.attempt_dir << "/worker.err)");
    }
    state.result.report.attempts.push_back(attempt);

    if (!attempt.failed) {
      state.result.report.outcome = ShardOutcome::kClean;
      state.done = true;
      return;
    }
    if (remaining.empty()) {
      // The attempt died AFTER journaling its last point: the shard owes
      // nothing, so a restart would supervise an empty assignment.
      state.result.report.outcome = ShardOutcome::kClean;
      state.done = true;
      return;
    }
    if (state.attempt > config_.max_restarts) {
      state.result.report.outcome = ShardOutcome::kQuarantined;
      state.done = true;
      TGI_LOG_WARN("serve: worker shard "
                   << job.shard << " for " << job.label
                   << " quarantined after " << state.attempt
                   << " attempt(s); its " << remaining.size()
                   << " remaining point(s) fall back to in-process compute");
      return;
    }
    // Accounted exponential backoff (never slept), RobustConfig's shape:
    // restart r charges base * 2^(r-1).
    const std::size_t restart = state.result.report.restarts + 1;
    const double charge =
        config_.backoff_base.value() *
        static_cast<double>(1ULL << (restart - 1));
    state.result.report.backoff =
        util::Seconds(state.result.report.backoff.value() + charge);
    state.result.report.restarts = restart;
    TGI_LOG_WARN("serve: worker shard "
                 << job.shard << " for " << job.label << " restarting (attempt "
                 << state.attempt + 1 << "/" << config_.max_restarts + 1
                 << ", backoff " << charge << "s accounted, "
                 << remaining.size() << " point(s) remaining)");
    spawn_attempt(state);
  };

  for (;;) {
    bool all_done = true;
    for (ShardState& state : states) {
      if (state.done) continue;
      all_done = false;

      const util::ExitStatus* status = state.child->try_wait();
      if (status != nullptr) {
        settle_attempt(state, *status);
        continue;
      }
      if (state.escalating) {
        if (++state.grace_polls > config_.grace_polls) {
          state.child->kill(SIGKILL);
        }
        continue;
      }
      // Progress watchdog: journal growth is the only progress signal.
      const std::uintmax_t size =
          journal_size(state.attempt_dir + "/journal.tgij");
      if (size > state.last_size) {
        state.last_size = size;
        state.stalled_polls = 0;
      } else if (++state.stalled_polls > config_.stall_polls) {
        state.hung = true;
        state.escalating = true;
        state.grace_polls = 0;
        state.child->kill(SIGTERM);
      }
    }
    if (all_done) break;
    sleep_poll_tick();
  }

  std::vector<SupervisedShard> results;
  results.reserve(states.size());
  for (ShardState& state : states) {
    results.push_back(std::move(state.result));
  }
  return results;
}

}  // namespace tgi::serve
