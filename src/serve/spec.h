// Campaign specs: what one batch request to the campaign engine asks for.
//
// A campaign file lists many sweep specs — the HEP-benchmark-suite shape
// of the paper's methodology: the same (cluster, suite, seed, faults)
// points recurring across multi-day, multi-site requests. Format
// (DESIGN.md §13):
//
//   # one [entry] section per sweep spec
//   [fire-baseline]
//   cluster = fire            # builtin name, or a clusters/*.conf path
//   sweep = 16,48,80          # process counts (required)
//   seed = 7                  # meter RNG seed (default 0x9e3779b9)
//   meter = wattsup           # wattsup | model
//   faults = dropout=0.2,failure=0.1   # optional: robust sweep
//   granularity = task        # task | point (default task — §13)
//   reference = systemg       # reference machine for TGI (default systemg)
//
// Entry names are directory-safe ([A-Za-z0-9._-]) and unique; unknown
// keys fail loudly (util::require_known_keys). `granularity` defaults to
// `task` here and in tgi_serve's worker mode — the service arc is the
// consumer ROADMAP item 2 gated that flip on; tgi_sweep and the bench
// harnesses keep `point`.
//
// The same grammar minus [sections] doubles as the engine→worker handoff
// file (worker_spec_config / load_worker_spec): the engine serializes the
// entry with its cluster inlined as a spec-file path and the fault spec as
// the user's original text, so the worker re-parses bit-identical inputs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "harness/faults.h"
#include "harness/parallel.h"
#include "harness/robust.h"
#include "sim/machine.h"

namespace tgi::serve {

/// One campaign entry: everything that determines a sweep's bytes, plus
/// its presentation name and the reference machine (which only affects
/// derived TGI output, never the cached raw measurements).
struct CampaignSpec {
  std::string name;
  sim::ClusterSpec cluster;
  sim::ClusterSpec reference;
  std::vector<std::size_t> sweep;
  std::uint64_t seed = 0x9e3779b9ULL;
  bool exact_meter = false;  ///< meter=model (noise-free ModelMeter)
  /// The user's fault spec text, verbatim (empty = fault-free sweep).
  /// Kept as text so the engine→worker handoff re-parses the exact same
  /// spec; `faults()` derives the parsed form.
  std::string fault_text;
  harness::SweepGranularity granularity =
      harness::SweepGranularity::kTask;

  [[nodiscard]] bool faulted() const { return !fault_text.empty(); }
  /// Parsed fault plane; requires faulted().
  [[nodiscard]] harness::FaultSpec faults() const;
};

/// "plain" or "robust" — the journal/cache mode this entry runs under.
[[nodiscard]] const char* spec_mode(const CampaignSpec& spec);

/// The recovery policy the entry's robust sweeps use (mirrors tgi_sweep:
/// stuck_run_limit=8 on the noisy WattsUp instrument, 0 on ModelMeter).
[[nodiscard]] harness::RobustConfig spec_robust_config(
    const CampaignSpec& spec);

/// Canonical cache-key text for the entry's sweep points
/// (harness::cache_spec_text) and its FNV-1a digest.
[[nodiscard]] std::string canonical_spec_text(const CampaignSpec& spec);
[[nodiscard]] std::uint64_t spec_hash(const CampaignSpec& spec);

/// Canonical cache-key text for the entry's REFERENCE run and its digest.
/// A reference run is not a plain sweep point of the reference cluster —
/// it meters only active nodes, runs IOzone on a node slice, and salts the
/// meter seed (+1) — so its key carries a `reference=1` marker line that
/// keeps it from ever colliding with a sweep over the same machine.
[[nodiscard]] std::string reference_spec_text(const CampaignSpec& spec);
[[nodiscard]] std::uint64_t reference_spec_hash(const CampaignSpec& spec);

/// Parses a campaign file. `base_dir` resolves relative cluster paths
/// (pass the campaign file's directory). Throws on malformed entries,
/// duplicate or unsafe names, and unknown keys.
[[nodiscard]] std::vector<CampaignSpec> parse_campaign(
    const std::string& text, const std::string& base_dir);
[[nodiscard]] std::vector<CampaignSpec> load_campaign_file(
    const std::string& path);

/// Serializes one entry as a worker handoff file (section-free campaign
/// grammar; the cluster rides as a path to a spec file the engine wrote).
[[nodiscard]] std::string worker_spec_config(const CampaignSpec& spec,
                                             const std::string& cluster_path);
/// Loads a worker handoff file. The worker never needs the reference
/// machine, so the returned spec's `reference` is the builtin default.
[[nodiscard]] CampaignSpec load_worker_spec(const std::string& path);

}  // namespace tgi::serve
