// The sanctioned process-spawn primitive — util::Subprocess is to child
// processes what util::ThreadPool is to threads.
//
// The campaign engine (DESIGN.md §13) shards sweep points across worker
// *processes*; anything that forks must keep the repo's determinism
// auditable, so process creation is concentrated here the same way raw
// threads are concentrated in util/thread_pool*. A spawned child gets an
// explicit argv, optional stdout/stderr redirection to files, and optional
// extra environment variables; the parent observes only the exit
// disposition. No shells, no PATH-dependent surprises beyond execvp's
// documented lookup, no inherited stream interleaving unless asked for.
#pragma once

#include <string>
#include <vector>

namespace tgi::util {

/// Exit disposition of a finished child process.
struct ExitStatus {
  bool exited = false;  ///< true: normal exit; false: killed by a signal
  int code = -1;        ///< exit code when `exited`
  int signal = 0;       ///< terminating signal when not `exited`

  [[nodiscard]] bool success() const { return exited && code == 0; }
  /// Human-readable summary, e.g. "exit 0" or "signal 9 (SIGKILL)".
  [[nodiscard]] std::string describe() const;
};

/// Spawn-time options.
struct SubprocessOptions {
  /// Redirect the child's stdout/stderr to these files (truncating).
  /// Empty = inherit the parent's stream.
  std::string stdout_path;
  std::string stderr_path;
  /// Extra `NAME=VALUE` environment entries set in the child on top of the
  /// inherited environment.
  std::vector<std::string> extra_env;
};

/// One child process: spawned on construction, supervisable afterwards.
/// wait() joins; try_wait() probes without blocking; kill() signals. The
/// destructor never blocks forever: an unreaped child is asked to exit
/// (SIGTERM), given a bounded grace period, then SIGKILLed and reaped — a
/// Subprocess can never outlive its handle unsupervised (mirror of
/// ThreadPool's join-on-destruction), and a hung child cannot wedge the
/// parent on the way out.
class Subprocess {
 public:
  /// Spawns `argv` (argv[0] is the executable; execvp lookup rules).
  /// Throws TgiError when the spawn itself fails. An exec failure inside
  /// the child surfaces as exit code 127.
  explicit Subprocess(std::vector<std::string> argv,
                      SubprocessOptions options = {});
  ~Subprocess();

  Subprocess(const Subprocess&) = delete;
  Subprocess& operator=(const Subprocess&) = delete;
  Subprocess(Subprocess&& other) noexcept;
  Subprocess& operator=(Subprocess&&) = delete;

  /// Blocks until the child exits and returns its disposition. Idempotent.
  const ExitStatus& wait();

  /// Non-blocking probe: reaps and returns the disposition when the child
  /// has exited (idempotent afterwards), nullptr while it is still
  /// running. The supervision poll primitive — watchdogs call this between
  /// progress checks instead of blocking in wait().
  const ExitStatus* try_wait();

  /// Sends `sig` to the child. No-op once the child has been reaped (the
  /// pid may have been recycled); a signal racing the child's own exit is
  /// benign and ignored.
  void kill(int sig);

  [[nodiscard]] long pid() const { return pid_; }

 private:
  long pid_ = -1;
  bool waited_ = false;
  ExitStatus status_;
};

/// Convenience: spawn, wait, return the disposition.
[[nodiscard]] ExitStatus run_process(std::vector<std::string> argv,
                                     SubprocessOptions options = {});

/// Absolute path of the running executable (/proc/self/exe) — how
/// tgi_serve re-spawns itself in --worker mode without trusting argv[0].
[[nodiscard]] std::string current_executable();

}  // namespace tgi::util
