#include "util/format.h"

#include <array>
#include <cmath>
#include <cstdio>
#include <string>

namespace tgi::util {

namespace {
std::string printf_format(const char* fmt, double v, int precision) {
  std::array<char, 64> buf{};
  std::snprintf(buf.data(), buf.size(), fmt, precision, v);
  return std::string(buf.data());
}
}  // namespace

std::string fixed(double v, int precision) {
  return printf_format("%.*f", v, precision);
}

std::string scientific(double v, int precision) {
  return printf_format("%.*e", v, precision);
}

std::string percent(double fraction, int precision) {
  return fixed(fraction * 100.0, precision) + "%";
}

std::string si_format(double v, const std::string& unit, int precision) {
  static constexpr std::array<const char*, 7> kPrefixes = {
      "", "k", "M", "G", "T", "P", "E"};
  double mag = std::fabs(v);
  std::size_t idx = 0;
  while (mag >= 1000.0 && idx + 1 < kPrefixes.size()) {
    mag /= 1000.0;
    v /= 1000.0;
    ++idx;
  }
  return fixed(v, precision) + " " + kPrefixes[idx] + unit;
}

std::string format(Watts w, int precision) {
  return si_format(w.value(), "W", precision);
}

std::string format(Joules e, int precision) {
  return si_format(e.value(), "J", precision);
}

std::string format(Seconds t, int precision) {
  return fixed(t.value(), precision) + " s";
}

std::string format(FlopRate r, int precision) {
  return si_format(r.value(), "FLOPS", precision);
}

std::string format(ByteRate r, int precision) {
  return si_format(r.value(), "B/s", precision);
}

std::string with_commas(long long v) {
  const bool neg = v < 0;
  std::string digits = std::to_string(neg ? -v : v);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3 + 1);
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (neg) out.push_back('-');
  return std::string(out.rbegin(), out.rend());
}

}  // namespace tgi::util
