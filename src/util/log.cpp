#include "util/log.h"

#include <iostream>

namespace tgi::util {

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

Logger::Logger() : level_(LogLevel::kWarn), sink_(&std::clog) {}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_level(LogLevel level) {
  std::scoped_lock lock(mu_);
  level_ = level;
}

LogLevel Logger::level() const {
  std::scoped_lock lock(mu_);
  return level_;
}

void Logger::set_sink(std::ostream* sink) {
  std::scoped_lock lock(mu_);
  sink_ = sink;
}

void Logger::log(LogLevel level, const std::string& message) {
  std::scoped_lock lock(mu_);
  if (static_cast<int>(level) < static_cast<int>(level_) ||
      sink_ == nullptr) {
    return;
  }
  *sink_ << "[tgi:" << log_level_name(level) << "] " << message << '\n';
}

}  // namespace tgi::util
