#include "util/thread_pool.h"

#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>

#include "util/error.h"

namespace tgi::util {

struct ThreadPool::State {
  struct Task {
    std::function<void()> body;
    std::size_t sequence = 0;  // submission order; parallel_for's index
  };
  std::mutex mutex;
  std::condition_variable work_ready;   // workers wait here for tasks
  std::condition_variable idle;         // wait() waits here for drain
  std::deque<Task> queue;
  std::size_t next_sequence = 0;        // total tasks ever submitted
  std::size_t in_flight = 0;            // popped but not yet finished
  bool stopping = false;
  std::exception_ptr first_error;
  TaskHook task_hook;  // immutable after first submit; read without lock
  std::vector<std::jthread> workers;
};

ThreadPool::ThreadPool(std::size_t threads)
    : state_(std::make_unique<State>()), thread_count_(threads) {
  TGI_REQUIRE(threads >= 1, "ThreadPool needs at least one worker, got 0");
  const auto worker_loop = [](State& state, std::size_t worker) {
    for (;;) {
      State::Task task;
      {
        std::unique_lock lock(state.mutex);
        state.work_ready.wait(
            lock, [&] { return state.stopping || !state.queue.empty(); });
        if (state.queue.empty()) return;  // stopping and drained
        task = std::move(state.queue.front());
        state.queue.pop_front();
        ++state.in_flight;
      }
      // The hook is set-before-first-submit, so reading it unlocked here is
      // race-free; it brackets the body outside the lock and the end call
      // fires even when the task throws. A throwing hook must not escape
      // the worker loop (that would std::terminate the process), so both
      // hook calls are captured like task errors: the pool keeps draining
      // and wait() rethrows the first one.
      std::exception_ptr error;
      try {
        if (state.task_hook) state.task_hook(worker, task.sequence, true);
        task.body();
      } catch (...) {
        error = std::current_exception();
      }
      try {
        if (state.task_hook) state.task_hook(worker, task.sequence, false);
      } catch (...) {
        if (!error) error = std::current_exception();
      }
      {
        std::unique_lock lock(state.mutex);
        // Transfer (or drop) the worker's exception reference while holding
        // the mutex: the exception object must never be destroyed on this
        // thread after wait() rethrows it on another, and libstdc++'s
        // exception_ptr refcounting is not a synchronization point TSan can
        // see — the mutex is.
        if (error && !state.first_error) state.first_error = std::move(error);
        error = nullptr;
        --state.in_flight;
        if (state.queue.empty() && state.in_flight == 0) {
          state.idle.notify_all();
        }
      }
    }
  };
  state_->workers.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    state_->workers.emplace_back(
        [state = state_.get(), worker_loop, i] { worker_loop(*state, i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lock(state_->mutex);
    state_->stopping = true;
  }
  state_->work_ready.notify_all();
  state_->workers.clear();  // jthread joins; workers drain the queue first
}

void ThreadPool::set_task_hook(TaskHook hook) {
  std::unique_lock lock(state_->mutex);
  TGI_REQUIRE(state_->next_sequence == 0,
              "ThreadPool::set_task_hook must run before the first submit");
  state_->task_hook = std::move(hook);
}

void ThreadPool::submit(std::function<void()> task) {
  TGI_REQUIRE(static_cast<bool>(task), "ThreadPool::submit: empty task");
  {
    std::unique_lock lock(state_->mutex);
    TGI_CHECK(!state_->stopping, "ThreadPool::submit after shutdown");
    state_->queue.push_back({std::move(task), state_->next_sequence});
    ++state_->next_sequence;
  }
  state_->work_ready.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock lock(state_->mutex);
  state_->idle.wait(
      lock, [&] { return state_->queue.empty() && state_->in_flight == 0; });
  if (state_->first_error) {
    std::exception_ptr error = state_->first_error;
    state_->first_error = nullptr;
    std::rethrow_exception(error);
  }
}

std::size_t ThreadPool::default_thread_count() {
  if (const char* env = std::getenv("TGI_THREADS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed >= 1) {
      return static_cast<std::size_t>(parsed);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<std::size_t>(hw) : std::size_t{1};
}

void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn) {
  TGI_REQUIRE(static_cast<bool>(fn), "parallel_for: empty function");
  for (std::size_t i = 0; i < count; ++i) {
    pool.submit([&fn, i] { fn(i); });
  }
  pool.wait();
}

}  // namespace tgi::util
