// SIMD / precision substrate for the kernel lanes (DESIGN.md §14).
//
// The native kernels (kernels/stream, kernels/gups) and the simulator's
// roofline/contention inner loops burn the real cycles behind every sweep
// point; the campaign engine multiplies that cost across hundreds of
// cache-miss points per run. This header is the one sanctioned home for
// the raw-speed machinery those loops share, in the H2Pack aligned-lane
// idiom:
//
//   * Aligned allocation. `AlignedAllocator<T>` / `Lane<T>` guarantee
//     every lane's base address is aligned to `kAlignment` (64 bytes: one
//     cache line, one AVX-512 vector), so vector loads never straddle a
//     line and the compiler can use aligned moves.
//   * Lane padding. `make_lane<T>(n)` allocates `padded_size<T>(n)`
//     elements — n rounded up to a multiple of `kLaneWidth<T>` — so a
//     vectorized loop may always read a whole final vector. Padding
//     elements are value-initialized and must never be *written* by
//     kernels (results are defined over [0, n)).
//   * A compile-time precision toggle. `Real` is `double`, or `float`
//     when the build sets `-DTGI_DTYPE=float` (macro TGI_DTYPE_FLOAT) —
//     the H2Pack DTYPE idiom, for lanes where double precision is not
//     load-bearing (the native STREAM arrays: bandwidth is what is
//     measured, the arithmetic only has to validate). The simulator and
//     every figure-feeding path stay `double` unconditionally; goldens
//     are pinned on the default-`double` build only.
//   * Fixed-shape reductions. Vectorizing an FP reduction reorders it;
//     a serial left fold forbids vectorization. `tree_sum` /
//     `tree_transform_sum` pin one explicit reduction shape —
//     `kAccumulators` interleaved partials combined by a fixed pairwise
//     tree — that is byte-identical whether the compiler emits scalar or
//     vector code, and `tree_sum(x, threads)` decomposes by *data size only*
//     (fixed `kReduceBlock` blocks, partials combined in block order), so
//     the result is byte-identical at every thread count, the same way
//     src/obs pins its index-order merges.
//
// Raw aligned allocation (std::aligned_alloc, posix_memalign, _mm_malloc,
// operator new(std::align_val_t)) anywhere else in src/ or tools/ is a
// lint violation (rule `raw-aligned-alloc`): ASan/UBSan-clean ownership
// and the alignment guarantee live here, once.
#pragma once

#include <algorithm>
#include <cstddef>
#include <new>
#include <span>
#include <vector>

#include "util/thread_pool.h"

// GNU-dialect restrict qualifier: the kernel lanes alias nothing, and
// telling the compiler so removes the runtime overlap checks gcc would
// otherwise version vectorized loops with.
#define TGI_SIMD_RESTRICT __restrict__

namespace tgi::util::simd {

/// Element type of the DTYPE-toggleable kernel lanes. `double` by
/// default; `float` when the build is configured with -DTGI_DTYPE=float.
/// Only lanes documented DTYPE-toggleable (DESIGN.md §14) may use it —
/// figure-feeding arithmetic is double, unconditionally.
#if defined(TGI_DTYPE_FLOAT)
using Real = float;
#else
using Real = double;
#endif

/// Base-address alignment of every Lane, in bytes: one cache line, one
/// AVX-512 vector. Alignment guarantee: `lane.data()` from any Lane (or
/// AlignedAllocator-backed container) is a multiple of kAlignment.
inline constexpr std::size_t kAlignment = 64;

/// Elements of T per aligned vector lane (the H2Pack SIMD_LEN): 8 for
/// double, 16 for float, 8 for std::uint64_t.
template <typename T>
inline constexpr std::size_t kLaneWidth = kAlignment / sizeof(T);

/// `n` rounded up to a whole number of lanes — the allocated size of
/// `make_lane<T>(n)`.
template <typename T>
[[nodiscard]] constexpr std::size_t padded_size(std::size_t n) {
  return (n + kLaneWidth<T> - 1) / kLaneWidth<T> * kLaneWidth<T>;
}

/// Minimal allocator guaranteeing kAlignment-aligned storage. The one
/// sanctioned aligned-allocation site in the repository (lint rule
/// `raw-aligned-alloc`); everything flows through the sized, alignment-
/// aware global operators so ASan tracks every byte.
template <typename T>
class AlignedAllocator {
 public:
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) noexcept {}  // NOLINT

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{kAlignment}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{kAlignment});
  }

  template <typename U>
  [[nodiscard]] bool operator==(const AlignedAllocator<U>&) const noexcept {
    return true;
  }
};

/// An aligned data lane: std::vector semantics, kAlignment-aligned base.
template <typename T>
using Lane = std::vector<T, AlignedAllocator<T>>;

/// A lane sized for `n` elements plus lane padding, every element
/// (padding included) initialized to `fill`. Kernels compute over
/// [0, n) and must leave the padding untouched.
template <typename T>
[[nodiscard]] Lane<T> make_lane(std::size_t n, T fill = T{}) {
  return Lane<T>(padded_size<T>(n), fill);
}

/// Tells the compiler `p` is kAlignment-aligned (true for any
/// Lane::data()), enabling aligned vector loads without a peel loop.
template <typename T>
[[nodiscard]] inline T* assume_aligned(T* p) {
  return static_cast<T*>(__builtin_assume_aligned(p, kAlignment));
}
template <typename T>
[[nodiscard]] inline const T* assume_aligned(const T* p) {
  return static_cast<const T*>(__builtin_assume_aligned(p, kAlignment));
}

/// Partial accumulators in the fixed reduction shape. Element i feeds
/// partial i % kAccumulators; the partials are combined by the fixed
/// pairwise tree ((p0+p1)+(p2+p3)) + ((p4+p5)+(p6+p7)). The shape is a
/// compile-time constant — never derived from thread count, vector width,
/// or data size — so the reduction order (and therefore every FP result)
/// is identical for scalar code, vector code, and any pool size.
inline constexpr std::size_t kAccumulators = 8;

/// Fixed-shape sum of f(0) ... f(n-1). `f` must be pure (called exactly
/// once per index, in unspecified order within an accumulator chain's
/// fixed index sequence). Breaking the serial dependence into
/// kAccumulators independent chains is also the throughput win: a strict
/// left fold serializes on FP-add latency, the tree runs the chains in
/// parallel in the vector units.
template <typename T, typename F>
[[nodiscard]] T tree_transform_sum(std::size_t n, F&& f) {
  // The kAccumulators chains are spelled out (not an inner j-loop) so
  // each lives in its own register at -O2, where the un-unrolled loop
  // would keep the partials in a stack array and serialize on it.
  T partial[kAccumulators] = {};
  const std::size_t whole = n / kAccumulators * kAccumulators;
  static_assert(kAccumulators == 8, "unrolled body assumes 8 chains");
  for (std::size_t i = 0; i < whole; i += kAccumulators) {
    partial[0] += f(i);
    partial[1] += f(i + 1);
    partial[2] += f(i + 2);
    partial[3] += f(i + 3);
    partial[4] += f(i + 4);
    partial[5] += f(i + 5);
    partial[6] += f(i + 6);
    partial[7] += f(i + 7);
  }
  for (std::size_t i = whole; i < n; ++i) partial[i - whole] += f(i);
  const T q0 = partial[0] + partial[1];
  const T q1 = partial[2] + partial[3];
  const T q2 = partial[4] + partial[5];
  const T q3 = partial[6] + partial[7];
  return (q0 + q1) + (q2 + q3);
}

/// Block size of the reduction decomposition. Fixed: block boundaries
/// depend on data size only — never on thread count or vector width — so
/// serial and parallel evaluation walk the identical tree.
inline constexpr std::size_t kReduceBlock = 4096;

/// Fixed-shape sum of a data lane: per-block tree sums (kReduceBlock
/// leaves each), block partials combined by the same pairwise tree over
/// *block index*. `threads` only chooses who computes each block partial;
/// the tree — and therefore every bit of the result — is the same for
/// threads = 1, 2, N (pinned by tests/util/test_simd.cpp).
template <typename T>
[[nodiscard]] T tree_sum(std::span<const T> x, std::size_t threads = 1) {
  // No alignment assumption: callers may reduce arbitrary spans. Lanes
  // still vectorize (unaligned vector loads), they just may not use the
  // aligned-move fast path.
  const T* TGI_SIMD_RESTRICT p = x.data();
  const std::size_t n = x.size();
  if (n <= kReduceBlock) {
    return tree_transform_sum<T>(n, [p](std::size_t i) { return p[i]; });
  }
  const std::size_t blocks = (n + kReduceBlock - 1) / kReduceBlock;
  std::vector<T> partials = parallel_map(
      blocks,
      [p, n](std::size_t b) {
        const std::size_t begin = b * kReduceBlock;
        const std::size_t len = std::min(kReduceBlock, n - begin);
        return tree_transform_sum<T>(
            len, [p, begin](std::size_t i) { return p[begin + i]; });
      },
      threads);
  // The block partials are the leaves of the same fixed pairwise tree.
  const T* q = partials.data();
  return tree_transform_sum<T>(partials.size(),
                               [q](std::size_t i) { return q[i]; });
}

}  // namespace tgi::util::simd
