// Tiny key=value configuration parser.
//
// Bench harnesses accept overrides ("sweep=16,32,64", "seed=42") either from
// a file or from command-line `key=value` tokens; both funnel through this
// parser so every experiment is scriptable without recompiling.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace tgi::util {

/// An ordered key -> string-value map with typed getters.
///
/// Grammar: one `key = value` per line; '#' starts a comment; blank lines
/// and surrounding whitespace are ignored. Later assignments win.
class Config {
 public:
  Config() = default;

  /// Parses configuration text. Throws TgiError on malformed lines.
  static Config parse(const std::string& text);

  /// Parses `key=value` command-line tokens (argv[1..)). Tokens without '='
  /// are rejected. Useful for bench binaries.
  static Config from_args(int argc, const char* const* argv);

  /// Sets or overwrites a key.
  void set(const std::string& key, const std::string& value);

  /// True if the key is present.
  [[nodiscard]] bool has(const std::string& key) const;

  /// Raw string lookup.
  [[nodiscard]] std::optional<std::string> get(const std::string& key) const;

  /// Typed lookups with defaults. Throw TgiError when present but malformed.
  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback) const;
  [[nodiscard]] long long get_int(const std::string& key,
                                  long long fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

  /// Parses a comma-separated integer list, e.g. "16,32,64".
  [[nodiscard]] std::vector<long long> get_int_list(
      const std::string& key, const std::vector<long long>& fallback) const;

  /// All keys in insertion-independent (sorted) order.
  [[nodiscard]] std::vector<std::string> keys() const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace tgi::util
