// Tiny key=value configuration parser.
//
// Bench harnesses accept overrides ("sweep=16,32,64", "seed=42") either from
// a file or from command-line `key=value` tokens; both funnel through this
// parser so every experiment is scriptable without recompiling.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace tgi::util {

/// Checked numeric parsing — the engine behind Config's typed getters,
/// exposed for CLI code so every number entering the system is validated
/// the same way. The WHOLE string must parse: empty strings and trailing
/// garbage ("0.5x", "12abc") throw PreconditionError naming `what` (e.g.
/// "config key 'pue'", "weight 2"), never a bare std::invalid_argument.
[[nodiscard]] long long parse_int(const std::string& text,
                                  const std::string& what);
[[nodiscard]] double parse_double(const std::string& text,
                                  const std::string& what);

/// Parses a comma-separated list of numbers ("0.1,0.7,0.2") with the same
/// whole-string discipline per item; surrounding whitespace is trimmed and
/// empty items are skipped. Throws PreconditionError when an item is
/// malformed or the list ends up empty.
[[nodiscard]] std::vector<double> parse_double_list(const std::string& text,
                                                    const std::string& what);

/// An ordered key -> string-value map with typed getters.
///
/// Grammar: one `key = value` per line; '#' starts a comment; blank lines
/// and surrounding whitespace are ignored. Later assignments win.
class Config {
 public:
  Config() = default;

  /// Parses configuration text. Throws TgiError on malformed lines.
  static Config parse(const std::string& text);

  /// Parses `key=value` command-line tokens (argv[1..)). Tokens without '='
  /// are rejected. Useful for bench binaries.
  static Config from_args(int argc, const char* const* argv);

  /// Sets or overwrites a key.
  void set(const std::string& key, const std::string& value);

  /// True if the key is present.
  [[nodiscard]] bool has(const std::string& key) const;

  /// Raw string lookup.
  [[nodiscard]] std::optional<std::string> get(const std::string& key) const;

  /// Typed lookups with defaults. Throw TgiError when present but malformed.
  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback) const;
  [[nodiscard]] long long get_int(const std::string& key,
                                  long long fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

  /// Parses a comma-separated integer list, e.g. "16,32,64".
  [[nodiscard]] std::vector<long long> get_int_list(
      const std::string& key, const std::vector<long long>& fallback) const;

  /// All keys in insertion-independent (sorted) order.
  [[nodiscard]] std::vector<std::string> keys() const;

 private:
  std::map<std::string, std::string> values_;
};

/// Rejects unknown configuration keys: every key in `config` must appear in
/// `allowed`, else PreconditionError naming the offending key, the
/// `context` (e.g. "tgi_sweep"), and the full list of valid options — so a
/// typo like `thread=8` fails loudly instead of being silently swallowed.
void require_known_keys(const Config& config,
                        const std::vector<std::string>& allowed,
                        const std::string& context);

}  // namespace tgi::util
