// Strong-typed physical units used throughout the TGI library.
//
// The Green Index is a metric over measured (performance, power, time,
// energy) tuples, so unit confusion is the single easiest way to produce a
// wrong-but-plausible number (e.g. dividing MFLOPS by kW instead of W).
// Every quantity that crosses a module boundary is therefore carried in a
// zero-overhead strong type. Cross-unit arithmetic is only defined where it
// is physically meaningful (J = W*s, rate = count/s, ...).
#pragma once

#include <compare>
#include <cstdint>

namespace tgi::util {

/// Zero-overhead strong wrapper around `double`, parameterized by a unit tag.
///
/// Same-unit addition/subtraction and dimensionless scaling are defined on
/// all quantities; physically meaningful cross-unit products and quotients
/// are defined as free functions below.
template <typename Tag>
class Quantity {
 public:
  constexpr Quantity() = default;
  constexpr explicit Quantity(double v) : v_(v) {}

  /// Raw magnitude in the base unit of the tag (seconds, watts, ...).
  [[nodiscard]] constexpr double value() const { return v_; }

  constexpr auto operator<=>(const Quantity&) const = default;

  constexpr Quantity& operator+=(Quantity o) {
    v_ += o.v_;
    return *this;
  }
  constexpr Quantity& operator-=(Quantity o) {
    v_ -= o.v_;
    return *this;
  }
  constexpr Quantity& operator*=(double s) {
    v_ *= s;
    return *this;
  }
  constexpr Quantity& operator/=(double s) {
    v_ /= s;
    return *this;
  }

  friend constexpr Quantity operator+(Quantity a, Quantity b) {
    return Quantity(a.v_ + b.v_);
  }
  friend constexpr Quantity operator-(Quantity a, Quantity b) {
    return Quantity(a.v_ - b.v_);
  }
  friend constexpr Quantity operator-(Quantity a) { return Quantity(-a.v_); }
  friend constexpr Quantity operator*(Quantity a, double s) {
    return Quantity(a.v_ * s);
  }
  friend constexpr Quantity operator*(double s, Quantity a) {
    return Quantity(s * a.v_);
  }
  friend constexpr Quantity operator/(Quantity a, double s) {
    return Quantity(a.v_ / s);
  }
  /// Ratio of two same-unit quantities is dimensionless.
  friend constexpr double operator/(Quantity a, Quantity b) {
    return a.v_ / b.v_;
  }

 private:
  double v_ = 0.0;
};

namespace tags {
struct Seconds {};
struct Watts {};
struct Joules {};
struct Flops {};     // a *count* of floating-point operations
struct Bytes {};     // a *count* of bytes
struct FlopRate {};  // flops per second
struct ByteRate {};  // bytes per second
}  // namespace tags

using Seconds = Quantity<tags::Seconds>;
using Watts = Quantity<tags::Watts>;
using Joules = Quantity<tags::Joules>;
using FlopCount = Quantity<tags::Flops>;
using ByteCount = Quantity<tags::Bytes>;
using FlopRate = Quantity<tags::FlopRate>;
using ByteRate = Quantity<tags::ByteRate>;

// --- Physically meaningful cross-unit arithmetic -------------------------

/// Energy accumulated by drawing power `w` for duration `t`.
constexpr Joules operator*(Watts w, Seconds t) {
  return Joules(w.value() * t.value());
}
constexpr Joules operator*(Seconds t, Watts w) { return w * t; }

/// Average power over an interval.
constexpr Watts operator/(Joules e, Seconds t) {
  return Watts(e.value() / t.value());
}
/// Time to dissipate energy `e` at power `w`.
constexpr Seconds operator/(Joules e, Watts w) {
  return Seconds(e.value() / w.value());
}

/// Sustained floating-point rate for `f` operations over `t`.
constexpr FlopRate operator/(FlopCount f, Seconds t) {
  return FlopRate(f.value() / t.value());
}
/// Work done at rate `r` for duration `t`.
constexpr FlopCount operator*(FlopRate r, Seconds t) {
  return FlopCount(r.value() * t.value());
}
constexpr FlopCount operator*(Seconds t, FlopRate r) { return r * t; }
/// Time to execute `f` operations at sustained rate `r`.
constexpr Seconds operator/(FlopCount f, FlopRate r) {
  return Seconds(f.value() / r.value());
}

/// Sustained byte rate for `b` bytes moved over `t`.
constexpr ByteRate operator/(ByteCount b, Seconds t) {
  return ByteRate(b.value() / t.value());
}
/// Bytes moved at rate `r` for duration `t`.
constexpr ByteCount operator*(ByteRate r, Seconds t) {
  return ByteCount(r.value() * t.value());
}
constexpr ByteCount operator*(Seconds t, ByteRate r) { return r * t; }
/// Time to move `b` bytes at sustained rate `r`.
constexpr Seconds operator/(ByteCount b, ByteRate r) {
  return Seconds(b.value() / r.value());
}

// --- Convenience factories with SI / binary scaling -----------------------

constexpr Seconds seconds(double v) { return Seconds(v); }
constexpr Seconds milliseconds(double v) { return Seconds(v * 1e-3); }
constexpr Seconds microseconds(double v) { return Seconds(v * 1e-6); }
constexpr Seconds hours(double v) { return Seconds(v * 3600.0); }

constexpr Watts watts(double v) { return Watts(v); }
constexpr Watts kilowatts(double v) { return Watts(v * 1e3); }
constexpr Watts megawatts(double v) { return Watts(v * 1e6); }

constexpr Joules joules(double v) { return Joules(v); }
constexpr Joules kilojoules(double v) { return Joules(v * 1e3); }
/// One kilowatt-hour, the unit most plug meters integrate in.
constexpr Joules kilowatt_hours(double v) { return Joules(v * 3.6e6); }

constexpr FlopCount flops(double v) { return FlopCount(v); }
constexpr FlopCount gigaflop_count(double v) { return FlopCount(v * 1e9); }

constexpr FlopRate flops_per_sec(double v) { return FlopRate(v); }
constexpr FlopRate megaflops(double v) { return FlopRate(v * 1e6); }
constexpr FlopRate gigaflops(double v) { return FlopRate(v * 1e9); }
constexpr FlopRate teraflops(double v) { return FlopRate(v * 1e12); }

constexpr ByteCount bytes(double v) { return ByteCount(v); }
constexpr ByteCount kibibytes(double v) { return ByteCount(v * 1024.0); }
constexpr ByteCount mebibytes(double v) { return ByteCount(v * 1048576.0); }
constexpr ByteCount gibibytes(double v) { return ByteCount(v * 1073741824.0); }

constexpr ByteRate bytes_per_sec(double v) { return ByteRate(v); }
/// STREAM and IOzone report MB/s with MB = 1e6 bytes; we follow them.
constexpr ByteRate megabytes_per_sec(double v) { return ByteRate(v * 1e6); }
constexpr ByteRate gigabytes_per_sec(double v) { return ByteRate(v * 1e9); }

// --- Readback helpers ------------------------------------------------------

constexpr double in_megaflops(FlopRate r) { return r.value() / 1e6; }
constexpr double in_gigaflops(FlopRate r) { return r.value() / 1e9; }
constexpr double in_teraflops(FlopRate r) { return r.value() / 1e12; }
constexpr double in_megabytes_per_sec(ByteRate r) { return r.value() / 1e6; }
constexpr double in_kilowatts(Watts w) { return w.value() / 1e3; }
constexpr double in_kilowatt_hours(Joules e) { return e.value() / 3.6e6; }

}  // namespace tgi::util
