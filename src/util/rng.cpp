#include "util/rng.h"

#include <cmath>

namespace tgi::util {

double Xoshiro256::sqrt_ln_ratio(double s) {
  return std::sqrt(-2.0 * std::log(s) / s);
}

}  // namespace tgi::util
