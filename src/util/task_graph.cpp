#include "util/task_graph.h"

#include <algorithm>
#include <deque>

#include "util/error.h"

namespace tgi::util {

TaskGraph::NodeId TaskGraph::add_node(std::string label,
                                      std::function<void()> fn) {
  TGI_REQUIRE(static_cast<bool>(fn), "TaskGraph::add_node: empty task");
  TGI_REQUIRE(!executed_, "TaskGraph is single-use; it already ran");
  nodes_.push_back(Node{std::move(label), std::move(fn), {}, 0});
  return nodes_.size() - 1;
}

void TaskGraph::add_edge(NodeId from, NodeId to) {
  TGI_REQUIRE(from < nodes_.size() && to < nodes_.size(),
              "TaskGraph::add_edge: node id out of range (" << from << " -> "
                                                            << to << ")");
  TGI_REQUIRE(!executed_, "TaskGraph is single-use; it already ran");
  nodes_[from].successors.push_back(to);
  ++nodes_[to].dependencies;
}

void TaskGraph::check_acyclic() const {
  // Kahn's algorithm over a scratch indegree copy: if the peel-off misses
  // any node, the remainder contains a cycle — a construction bug.
  std::vector<std::size_t> indegree(nodes_.size());
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    indegree[n] = nodes_[n].dependencies;
  }
  std::deque<NodeId> ready;
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    if (indegree[n] == 0) ready.push_back(n);
  }
  std::size_t peeled = 0;
  while (!ready.empty()) {
    const NodeId n = ready.front();
    ready.pop_front();
    ++peeled;
    for (const NodeId succ : nodes_[n].successors) {
      if (--indegree[succ] == 0) ready.push_back(succ);
    }
  }
  TGI_CHECK(peeled == nodes_.size(),
            "TaskGraph contains a cycle (" << nodes_.size() - peeled
                                           << " of " << nodes_.size()
                                           << " nodes unreachable)");
}

void TaskGraph::finish_node(NodeId id, Status status,
                            std::vector<NodeId>& ready) {
  // Iterative cascade: a finished node may unblock successors, and a
  // failed/skipped one poisons them — a poisoned node whose dependencies
  // all finished is skipped immediately (its body never runs) and its own
  // successors are processed in turn.
  std::vector<std::pair<NodeId, Status>> stack{{id, status}};
  while (!stack.empty()) {
    const auto [n, s] = stack.back();
    stack.pop_back();
    status_[n] = s;
    for (const NodeId succ : nodes_[n].successors) {
      if (s != Status::kRan) poisoned_[succ] = true;
      TGI_CHECK(waiting_[succ] > 0, "TaskGraph dependency count underflow");
      if (--waiting_[succ] == 0) {
        if (poisoned_[succ]) {
          stack.emplace_back(succ, Status::kSkipped);
        } else {
          ready.push_back(succ);
        }
      }
    }
  }
  std::sort(ready.begin(), ready.end());
}

void TaskGraph::record_error(NodeId id, std::exception_ptr error) {
  errors_.emplace_back(id, std::move(error));
}

void TaskGraph::rethrow_first_error() {
  if (errors_.empty()) return;
  // Deterministic error priority: the smallest node id, not whichever
  // worker lost the race — several failing nodes rethrow the same error
  // at every thread count.
  const auto first = std::min_element(
      errors_.begin(), errors_.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  std::exception_ptr error = first->second;
  errors_.clear();
  std::rethrow_exception(error);
}

void TaskGraph::run_serial(const ThreadPool::TaskHook& hook) {
  std::vector<NodeId> ready;
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    if (waiting_[n] == 0) ready.push_back(n);
  }
  std::sort(ready.begin(), ready.end());
  std::size_t sequence = 0;
  while (!ready.empty()) {
    // Lowest ready id first: the reference serial order task-granularity
    // sweeps are byte-compared against.
    const NodeId n = ready.front();
    ready.erase(ready.begin());
    Status status = Status::kRan;
    try {
      if (hook) hook(0, sequence, true);
      nodes_[n].fn();
    } catch (...) {
      record_error(n, std::current_exception());
      status = Status::kFailed;
    }
    try {
      if (hook) hook(0, sequence, false);
    } catch (...) {
      if (status == Status::kRan) {
        record_error(n, std::current_exception());
        status = Status::kFailed;
      }
    }
    ++sequence;
    finish_node(n, status, ready);
  }
  rethrow_first_error();
}

void TaskGraph::run_parallel(std::size_t threads,
                             const ThreadPool::TaskHook& hook) {
  std::vector<NodeId> initial;
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    if (waiting_[n] == 0) initial.push_back(n);
  }
  {
    // The pool drains before this scope exits (destructor joins), so every
    // node body — and every finish_node cascade — happens-before the
    // rethrow below.
    ThreadPool pool(threads < nodes_.size() ? threads : nodes_.size());
    if (hook) pool.set_task_hook(hook);
    // The submit closure reenters itself for newly ready successors, so it
    // must be named before it is defined; a std::function self-reference
    // does that without recursion depth concerns (submission, not nesting).
    std::function<void(NodeId)> submit_node = [this, &pool,
                                               &submit_node](NodeId id) {
      pool.submit([this, &submit_node, id] {
        Status status = Status::kRan;
        try {
          nodes_[id].fn();
        } catch (...) {
          std::unique_lock lock(mu_);
          record_error(id, std::current_exception());
          status = Status::kFailed;
        }
        std::vector<NodeId> ready;
        {
          std::unique_lock lock(mu_);
          finish_node(id, status, ready);
        }
        // Submitting from the worker keeps the pool saturated; the pool's
        // queue mutex sequences these submits, and wait()/~ThreadPool only
        // returns once in-flight work (including these) drains.
        for (const NodeId next : ready) submit_node(next);
      });
    };
    for (const NodeId n : initial) submit_node(n);
    pool.wait();
  }
  rethrow_first_error();
}

void TaskGraph::run(std::size_t threads, const ThreadPool::TaskHook& hook) {
  TGI_REQUIRE(!executed_, "TaskGraph is single-use; it already ran");
  executed_ = true;
  check_acyclic();
  status_.assign(nodes_.size(), Status::kPending);
  poisoned_.assign(nodes_.size(), false);
  waiting_.resize(nodes_.size());
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    waiting_[n] = nodes_[n].dependencies;
  }
  if (nodes_.empty()) return;
  if (threads == 0) threads = ThreadPool::default_thread_count();
  if (threads <= 1 || nodes_.size() <= 1) {
    run_serial(hook);
  } else {
    run_parallel(threads, hook);
  }
}

bool TaskGraph::ran(NodeId id) const {
  TGI_REQUIRE(id < status_.size(), "TaskGraph node id out of range");
  return status_[id] == Status::kRan;
}

bool TaskGraph::skipped(NodeId id) const {
  TGI_REQUIRE(id < status_.size(), "TaskGraph node id out of range");
  return status_[id] == Status::kSkipped;
}

bool TaskGraph::failed(NodeId id) const {
  TGI_REQUIRE(id < status_.size(), "TaskGraph node id out of range");
  return status_[id] == Status::kFailed;
}

}  // namespace tgi::util
