// Minimal leveled logger for harness and simulator diagnostics.
//
// Deliberately tiny: a process-wide level filter and stream sink. The
// simulator produces a lot of phase-level detail at Debug which is off by
// default so benchmark output stays clean.
#pragma once

#include <iosfwd>
#include <mutex>
#include <sstream>
#include <string>

namespace tgi::util {

/// Severity levels, ordered; messages below the active level are dropped.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Returns the human-readable name of a level ("DEBUG", "INFO", ...).
const char* log_level_name(LogLevel level);

/// Process-wide logger. Thread-safe: each emitted line is a single write
/// under a mutex (CP.20: RAII locking).
class Logger {
 public:
  /// The singleton instance used by the TGI_LOG_* macros.
  static Logger& instance();

  /// Sets the minimum severity that will be emitted.
  void set_level(LogLevel level);
  [[nodiscard]] LogLevel level() const;

  /// Redirects output (default: std::clog). The stream must outlive use.
  void set_sink(std::ostream* sink);

  /// Emits one line if `level` passes the filter.
  void log(LogLevel level, const std::string& message);

 private:
  Logger();
  mutable std::mutex mu_;
  LogLevel level_;
  std::ostream* sink_;
};

}  // namespace tgi::util

#define TGI_LOG_AT(lvl, expr)                                          \
  do {                                                                 \
    if (static_cast<int>(lvl) >=                                       \
        static_cast<int>(::tgi::util::Logger::instance().level())) {   \
      ::std::ostringstream tgi_log_oss_;                               \
      tgi_log_oss_ << expr; /* NOLINT */                               \
      ::tgi::util::Logger::instance().log(lvl, tgi_log_oss_.str());    \
    }                                                                  \
  } while (false)

#define TGI_LOG_DEBUG(expr) TGI_LOG_AT(::tgi::util::LogLevel::kDebug, expr)
#define TGI_LOG_INFO(expr) TGI_LOG_AT(::tgi::util::LogLevel::kInfo, expr)
#define TGI_LOG_WARN(expr) TGI_LOG_AT(::tgi::util::LogLevel::kWarn, expr)
#define TGI_LOG_ERROR(expr) TGI_LOG_AT(::tgi::util::LogLevel::kError, expr)
