#include "util/error.h"

namespace tgi::util::detail {

namespace {
std::string compose(const char* kind, const char* expr, const char* file,
                    int line, const std::string& msg) {
  std::ostringstream oss;
  oss << kind << " failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) oss << " — " << msg;
  return oss.str();
}
}  // namespace

void throw_precondition(const char* expr, const char* file, int line,
                        const std::string& msg) {
  throw PreconditionError(compose("precondition", expr, file, line, msg));
}

void throw_internal(const char* expr, const char* file, int line,
                    const std::string& msg) {
  throw InternalError(compose("invariant", expr, file, line, msg));
}

}  // namespace tgi::util::detail
