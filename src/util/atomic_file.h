// Crash-consistent file output: temp-file + rename atomic writes, plus the
// CRC-32 checksum the checkpoint journal stamps on its records.
//
// Every artifact this repository publishes (figure CSVs, measurement
// interchange files, trace.json, the sweep summaries) used to be written
// through a bare std::ofstream — a crash or ENOSPC mid-write would leave a
// torn file that downstream tools might half-parse. This module gives the
// repo one audited write path with all-or-nothing semantics: content is
// staged in memory (or in a sibling temp file), flushed, and atomically
// renamed over the destination, so readers only ever observe the old bytes
// or the complete new bytes. The tgi-lint `nonatomic-output-write` rule
// keeps src/harness, src/obs and tools/ on this path mechanically.
//
// The one output that cannot use rename — the append-only checkpoint
// journal (harness/checkpoint.h) — gets crash consistency from per-record
// CRC-32 checksums instead: a torn tail record fails its checksum and is
// quarantined on read. The checksum primitive lives here so both halves of
// the durability story share one implementation.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>

namespace tgi::util {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320 — the zip/PNG
/// checksum). Deterministic across platforms; used for journal records.
[[nodiscard]] std::uint32_t crc32(std::string_view data);

/// The staging path `atomic_write_file` uses for `path` (path + ".tmp").
/// Deterministic by design: the writer assumes a single writer per
/// destination, which is how every emitter in this repo behaves.
[[nodiscard]] std::string atomic_temp_path(const std::string& path);

/// Writes `content` to `path` with all-or-nothing semantics: stage into
/// the temp path, flush, then rename over the destination. Throws TgiError
/// on any failure (unopenable temp, short write, failed rename) after
/// removing the temp file — a previously existing file at `path` is left
/// byte-for-byte intact.
void atomic_write_file(const std::string& path, std::string_view content);

/// Stream-style atomic writer: accumulate output in memory, then commit()
/// performs the atomic write. Destruction without commit() abandons the
/// content and leaves any existing file at `path` untouched, so an emitter
/// that throws halfway through formatting can never tear its output.
///
///   util::AtomicFile out(path);
///   util::CsvWriter csv(out.stream());
///   csv.write_row({...});
///   out.commit();
class AtomicFile {
 public:
  explicit AtomicFile(std::string path);
  ~AtomicFile() = default;  // not committed => nothing touches `path`

  AtomicFile(const AtomicFile&) = delete;
  AtomicFile& operator=(const AtomicFile&) = delete;

  /// The in-memory staging stream.
  [[nodiscard]] std::ostream& stream() { return buffer_; }
  [[nodiscard]] const std::string& path() const { return path_; }

  /// Atomically publishes the buffered content to path(). At most once.
  void commit();

 private:
  std::string path_;
  std::ostringstream buffer_;
  bool committed_ = false;
};

}  // namespace tgi::util
