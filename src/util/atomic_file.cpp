#include "util/atomic_file.h"

#include <array>
#include <cstdio>
#include <fstream>

#include "util/error.h"
#include "util/io_faults.h"

namespace tgi::util {

namespace {

// Table-driven reflected CRC-32 (polynomial 0xEDB88320), built once at
// static-init time. Matches zlib's crc32(): crc32("123456789") == 0xCBF43926.
constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = n;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1U) != 0 ? 0xEDB88320U ^ (c >> 1U) : c >> 1U;
    }
    table[n] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kCrc32Table = make_crc32_table();

}  // namespace

std::uint32_t crc32(std::string_view data) {
  std::uint32_t crc = 0xFFFFFFFFU;
  for (const char ch : data) {
    const auto byte = static_cast<unsigned char>(ch);
    crc = kCrc32Table[(crc ^ byte) & 0xFFU] ^ (crc >> 8U);
  }
  return crc ^ 0xFFFFFFFFU;
}

std::string atomic_temp_path(const std::string& path) { return path + ".tmp"; }

void atomic_write_file(const std::string& path, std::string_view content) {
  TGI_REQUIRE(!path.empty(), "atomic_write_file: empty path");
  const std::string temp = atomic_temp_path(path);
  {
    // This IS the atomic writer; the ofstream targets the staging path,
    // never the destination.
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) {
      throw TgiError("atomic_write_file: cannot open staging file '" + temp +
                     "' for '" + path + "'");
    }
    // Deterministic I/O fault injection (DESIGN.md §15): the fault hits
    // the STAGING write, so however it fails — torn prefix or nothing —
    // the rename never happens and the visible file keeps its old bytes.
    const IoFaultKind fault = next_io_fault();
    if (fault != IoFaultKind::kNone) {
      if (fault == IoFaultKind::kShortWrite) {
        out.write(content.data(),
                  static_cast<std::streamsize>(content.size() / 2));
        out.flush();
      }
      out.close();
      std::remove(temp.c_str());
      throw TgiError(std::string("atomic_write_file: injected ") +
                     io_fault_name(fault) + " while staging '" + temp +
                     "' for '" + path + "'");
    }
    out.write(content.data(), static_cast<std::streamsize>(content.size()));
    out.flush();
    if (!out.good()) {
      out.close();
      std::remove(temp.c_str());
      throw TgiError("atomic_write_file: short write to staging file '" +
                     temp + "' for '" + path + "'");
    }
  }
  if (std::rename(temp.c_str(), path.c_str()) != 0) {
    std::remove(temp.c_str());
    throw TgiError("atomic_write_file: cannot rename '" + temp + "' over '" +
                   path + "'");
  }
}

AtomicFile::AtomicFile(std::string path) : path_(std::move(path)) {
  TGI_REQUIRE(!path_.empty(), "AtomicFile: empty path");
}

void AtomicFile::commit() {
  TGI_REQUIRE(!committed_, "AtomicFile: double commit for '" << path_ << "'");
  TGI_REQUIRE(buffer_.good(),
              "AtomicFile: staging stream failed for '" << path_ << "'");
  committed_ = true;
  atomic_write_file(path_, buffer_.str());
}

}  // namespace tgi::util
