// Aligned-text table and CSV rendering for harness output.
//
// Every bench binary prints the paper's rows/series twice: a human-readable
// aligned table (what shows in the terminal) and machine-readable CSV (for
// replotting the figures). Both renderers live here so formatting is uniform
// across all eight experiment harnesses.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace tgi::util {

/// Builds a column-aligned plain-text table.
class TextTable {
 public:
  /// Creates a table with the given column headers.
  explicit TextTable(std::vector<std::string> header);

  /// Appends one row; must have exactly as many cells as the header.
  void add_row(std::vector<std::string> row);

  /// Number of data rows added so far.
  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  /// Renders with a header rule, right-padding every cell to column width.
  [[nodiscard]] std::string to_string() const;

  /// Streams the rendered table.
  friend std::ostream& operator<<(std::ostream& os, const TextTable& t);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Incremental CSV writer (RFC-4180-style quoting for cells that need it).
class CsvWriter {
 public:
  /// Writes to `out`, which must outlive the writer.
  explicit CsvWriter(std::ostream& out);

  /// Writes one row. Quoting is applied per cell as needed.
  void write_row(const std::vector<std::string>& cells);

 private:
  static std::string escape(const std::string& cell);
  std::ostream& out_;
};

}  // namespace tgi::util
