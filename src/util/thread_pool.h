// Fixed-size worker pool: the one sanctioned home for raw threads.
//
// Every figure and table in this repository must be bit-reproducible, so
// concurrency is deliberately boring: a fixed set of workers draining one
// FIFO queue, no work stealing, no detached threads. Callers make each
// task fully self-contained (own simulator, own meter, own RNG stream) and
// collect results by index, never by completion order — that is what lets
// harness::ParallelSweep promise thread-count-independent output. The
// tgi-lint `raw-thread` rule bans std::thread / std::jthread / std::async
// everywhere else (mpisim's ranks-as-threads runtime is the documented
// exception) so TSan coverage of the tree stays meaningful.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

namespace tgi::util {

/// A fixed set of worker threads draining a FIFO task queue.
///
/// Semantics:
///  - submit() enqueues a task; tasks start in submission order (FIFO) but
///    may complete in any order.
///  - wait() blocks until every submitted task has finished; if any task
///    threw, wait() rethrows the first exception (by submission-completion
///    order of capture) and swallows the rest.
///  - The destructor drains the queue (it waits for completion; it does
///    not cancel), so a pool can be used scoped without an explicit wait.
///  - A pool of size 1 executes tasks in exact submission order on one
///    worker — the serial execution, just off the calling thread.
class ThreadPool {
 public:
  /// Observation hook bracketing every task: called as
  /// hook(worker, task, true) on the worker thread immediately before the
  /// task body runs and hook(worker, task, false) immediately after (the
  /// end call fires even when the task throws). `task` is the submission
  /// sequence number (0-based FIFO order), so under parallel_for it equals
  /// the loop index. The hook runs outside the pool lock and must be
  /// thread-safe; it is observation-only and must not submit work. A
  /// throwing hook is handled like a throwing task: the pool drains and
  /// wait() rethrows the first error (a begin-hook throw skips that task's
  /// body; a task error outranks the same task's end-hook error).
  using TaskHook = std::function<void(std::size_t worker, std::size_t task,
                                      bool begin)>;

  /// Spawns `threads` workers. Precondition: threads >= 1.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Installs (or clears, with an empty hook) the task hook. Precondition:
  /// no task has been submitted yet — the hook is part of the pool's
  /// configuration, not a mid-flight toggle.
  void set_task_hook(TaskHook hook);

  /// Enqueues one task. Precondition: task is callable (non-null).
  void submit(std::function<void()> task);

  /// Blocks until all submitted tasks completed; rethrows the first
  /// exception captured from a task, if any.
  void wait();

  [[nodiscard]] std::size_t thread_count() const { return thread_count_; }

  /// The process-default worker count: the TGI_THREADS environment
  /// variable when set to a positive integer, otherwise
  /// std::thread::hardware_concurrency() (clamped to >= 1).
  [[nodiscard]] static std::size_t default_thread_count();

 private:
  struct State;  // mutex/cv/queue bundle (defined in thread_pool.cpp)
  std::unique_ptr<State> state_;
  std::size_t thread_count_ = 0;
};

/// Runs fn(0) .. fn(count-1) across the pool and blocks until all are
/// done; rethrows the first task exception. fn must be safe to invoke
/// concurrently for distinct indices.
void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn);

/// Maps index -> job(index) over a temporary pool of `threads` workers
/// (0 = default_thread_count()), collecting results BY INDEX so the output
/// is identical for every thread count. threads <= 1 runs inline on the
/// calling thread. job must be self-contained per index.
template <typename Job>
auto parallel_map(std::size_t count, Job&& job, std::size_t threads = 0)
    -> std::vector<decltype(job(std::size_t{0}))> {
  using Result = decltype(job(std::size_t{0}));
  std::vector<Result> results(count);
  if (threads == 0) threads = ThreadPool::default_thread_count();
  if (threads <= 1 || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) results[i] = job(i);
    return results;
  }
  ThreadPool pool(threads < count ? threads : count);
  parallel_for(pool, count, [&](std::size_t i) { results[i] = job(i); });
  return results;
}

}  // namespace tgi::util
