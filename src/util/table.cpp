#include "util/table.h"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "util/error.h"

namespace tgi::util {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  TGI_REQUIRE(!header_.empty(), "table must have at least one column");
}

void TextTable::add_row(std::vector<std::string> row) {
  TGI_REQUIRE(row.size() == header_.size(),
              "row has " << row.size() << " cells, header has "
                         << header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::ostringstream oss;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) oss << "  ";
      oss << row[c] << std::string(width[c] - row[c].size(), ' ');
    }
    oss << '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c == 0 ? 0 : 2);
  }
  oss << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return oss.str();
}

std::ostream& operator<<(std::ostream& os, const TextTable& t) {
  return os << t.to_string();
}

CsvWriter::CsvWriter(std::ostream& out) : out_(out) {}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string quoted = "\"";
  for (char ch : cell) {
    if (ch == '"') quoted += '"';
    quoted += ch;
  }
  quoted += '"';
  return quoted;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

}  // namespace tgi::util
