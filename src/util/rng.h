// Deterministic random-number generation for simulators and tests.
//
// Everything in this repository that consumes randomness (meter noise,
// matrix generation, workload jitter) takes an explicit seeded generator so
// every figure and table is bit-reproducible run to run. We implement
// SplitMix64 (for seeding) and xoshiro256** (the workhorse) from the public
// reference algorithms rather than relying on implementation-defined
// std::default_random_engine behaviour.
#pragma once

#include <cstdint>

namespace tgi::util {

/// SplitMix64: tiny, high-quality 64-bit mixer; used to expand a single
/// user seed into the xoshiro256** state.
class SplitMix64 {
 public:
  constexpr explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  /// Next 64-bit value.
  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast all-purpose 64-bit PRNG (Blackman & Vigna).
/// Satisfies UniformRandomBitGenerator so it composes with <random>
/// distributions where needed.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from one 64-bit seed via SplitMix64.
  constexpr explicit Xoshiro256(std::uint64_t seed = 0x5eed5eed5eed5eedULL) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  constexpr result_type operator()() { return next(); }

  constexpr std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  constexpr double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). Precondition: n > 0.
  constexpr std::uint64_t uniform_index(std::uint64_t n) {
    // Lemire-style rejection-free mapping is overkill here; modulo bias is
    // negligible for our n << 2^64 use cases, but we debias anyway.
    const std::uint64_t threshold = (~n + 1) % n;  // == 2^64 mod n
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % n;
    }
  }

  /// Standard normal deviate via Marsaglia polar method (no <cmath> trig).
  double normal() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u = 0.0, v = 0.0, s = 0.0;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double m = sqrt_ln_ratio(s);
    spare_ = v * m;
    have_spare_ = true;
    return u * m;
  }

  /// Normal deviate with the given mean and standard deviation.
  double normal(double mean, double stddev) {
    return mean + stddev * normal();
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  static double sqrt_ln_ratio(double s);  // sqrt(-2 ln(s) / s)
  std::uint64_t s_[4] = {};
  double spare_ = 0.0;
  bool have_spare_ = false;
};

}  // namespace tgi::util
