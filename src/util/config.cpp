#include "util/config.h"

#include <cctype>
#include <sstream>

#include "util/error.h"

namespace tgi::util {

namespace {
std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}
}  // namespace

long long parse_int(const std::string& text, const std::string& what) {
  try {
    std::size_t pos = 0;
    const long long v = std::stoll(text, &pos);
    TGI_REQUIRE(pos == text.size(), "trailing characters");
    return v;
  } catch (const std::exception&) {
    throw PreconditionError(what + " is not an integer: '" + text + "'");
  }
}

double parse_double(const std::string& text, const std::string& what) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(text, &pos);
    TGI_REQUIRE(pos == text.size(), "trailing characters");
    return v;
  } catch (const std::exception&) {
    throw PreconditionError(what + " is not a number: '" + text + "'");
  }
}

std::vector<double> parse_double_list(const std::string& text,
                                      const std::string& what) {
  std::vector<double> out;
  std::istringstream in(text);
  std::string item;
  while (std::getline(in, item, ',')) {
    const std::string stripped = trim(item);
    if (stripped.empty()) continue;
    out.push_back(parse_double(
        stripped, what + " item " + std::to_string(out.size() + 1)));
  }
  TGI_REQUIRE(!out.empty(), what << " is an empty list");
  return out;
}

Config Config::parse(const std::string& text) {
  Config cfg;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const std::string stripped = trim(line);
    if (stripped.empty()) continue;
    const auto eq = stripped.find('=');
    TGI_REQUIRE(eq != std::string::npos,
                "config line " << lineno << " is not `key = value`: '"
                               << stripped << "'");
    const std::string key = trim(stripped.substr(0, eq));
    const std::string value = trim(stripped.substr(eq + 1));
    TGI_REQUIRE(!key.empty(), "config line " << lineno << " has empty key");
    cfg.set(key, value);
  }
  return cfg;
}

Config Config::from_args(int argc, const char* const* argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    const auto eq = token.find('=');
    TGI_REQUIRE(eq != std::string::npos && eq > 0,
                "argument '" << token << "' is not key=value");
    cfg.set(trim(token.substr(0, eq)), trim(token.substr(eq + 1)));
  }
  return cfg;
}

void Config::set(const std::string& key, const std::string& value) {
  values_[key] = value;
}

bool Config::has(const std::string& key) const {
  return values_.count(key) != 0;
}

std::optional<std::string> Config::get(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Config::get_string(const std::string& key,
                               const std::string& fallback) const {
  return get(key).value_or(fallback);
}

long long Config::get_int(const std::string& key, long long fallback) const {
  const auto raw = get(key);
  if (!raw) return fallback;
  return parse_int(*raw, "config key '" + key + "'");
}

double Config::get_double(const std::string& key, double fallback) const {
  const auto raw = get(key);
  if (!raw) return fallback;
  return parse_double(*raw, "config key '" + key + "'");
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  const auto raw = get(key);
  if (!raw) return fallback;
  if (*raw == "true" || *raw == "1" || *raw == "yes" || *raw == "on") {
    return true;
  }
  if (*raw == "false" || *raw == "0" || *raw == "no" || *raw == "off") {
    return false;
  }
  throw PreconditionError("config key '" + key + "' is not a boolean: '" +
                          *raw + "'");
}

std::vector<long long> Config::get_int_list(
    const std::string& key, const std::vector<long long>& fallback) const {
  const auto raw = get(key);
  if (!raw) return fallback;
  std::vector<long long> out;
  std::istringstream in(*raw);
  std::string item;
  while (std::getline(in, item, ',')) {
    const std::string stripped = trim(item);
    if (stripped.empty()) continue;
    // Whole-item parse: "12abc" used to slip through a bare std::stoll.
    out.push_back(parse_int(stripped, "config key '" + key + "' item " +
                                          std::to_string(out.size() + 1)));
  }
  TGI_REQUIRE(!out.empty(), "config key '" << key << "' is an empty list");
  return out;
}

std::vector<std::string> Config::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, _] : values_) out.push_back(k);
  return out;
}

void require_known_keys(const Config& config,
                        const std::vector<std::string>& allowed,
                        const std::string& context) {
  for (const std::string& key : config.keys()) {
    bool known = false;
    for (const std::string& candidate : allowed) {
      if (key == candidate) {
        known = true;
        break;
      }
    }
    if (known) continue;
    std::string options;
    for (const std::string& candidate : allowed) {
      if (!options.empty()) options += ", ";
      options += candidate;
    }
    throw PreconditionError(context + ": unknown option '" + key +
                            "' (valid options: " + options + ")");
  }
}

}  // namespace tgi::util
