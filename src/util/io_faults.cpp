#include "util/io_faults.h"

#include <atomic>
#include <mutex>

#include "util/config.h"
#include "util/error.h"
#include "util/rng.h"

namespace tgi::util {

namespace {

struct ShimState {
  std::mutex mu;
  bool installed = false;
  IoFaultSpec spec;
  std::atomic<std::uint64_t> ops{0};
};

ShimState& shim() {
  static ShimState state;
  return state;
}

}  // namespace

const char* io_fault_name(IoFaultKind kind) {
  switch (kind) {
    case IoFaultKind::kNone:
      return "none";
    case IoFaultKind::kShortWrite:
      return "short-write";
    case IoFaultKind::kEnospc:
      return "enospc";
    case IoFaultKind::kEio:
      return "eio";
  }
  return "none";
}

void IoFaultSpec::validate() const {
  TGI_REQUIRE(rate >= 0.0 && rate <= 1.0,
              "io-fault rate must be in [0, 1], got " << rate);
}

IoFaultSpec parse_io_fault_spec(const std::string& text) {
  IoFaultSpec spec;
  TGI_REQUIRE(!text.empty(), "empty io-fault spec (want '<rate>' or "
                             "'seed=N,rate=P')");
  if (text.find('=') == std::string::npos) {
    spec.rate = parse_double(text, "io-fault rate");
  } else {
    std::size_t start = 0;
    while (start <= text.size()) {
      const std::size_t comma = text.find(',', start);
      const std::string item =
          text.substr(start, comma == std::string::npos ? std::string::npos
                                                        : comma - start);
      const std::size_t eq = item.find('=');
      TGI_REQUIRE(eq != std::string::npos,
                  "io-fault spec item '" << item
                                         << "' is not key=value (valid "
                                            "keys: seed, rate)");
      const std::string key = item.substr(0, eq);
      const std::string value = item.substr(eq + 1);
      if (key == "seed") {
        spec.seed = static_cast<std::uint64_t>(
            parse_int(value, "io-fault seed"));
      } else if (key == "rate") {
        spec.rate = parse_double(value, "io-fault rate");
      } else {
        TGI_REQUIRE(false, "unknown io-fault spec key '"
                               << key << "' (valid keys: seed, rate)");
      }
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
  }
  spec.validate();
  return spec;
}

void install_io_faults(const IoFaultSpec& spec) {
  spec.validate();
  ShimState& state = shim();
  const std::lock_guard<std::mutex> lock(state.mu);
  state.installed = true;
  state.spec = spec;
  state.ops.store(0);
}

void clear_io_faults() {
  ShimState& state = shim();
  const std::lock_guard<std::mutex> lock(state.mu);
  state.installed = false;
  state.spec = IoFaultSpec{};
}

bool io_faults_installed() {
  ShimState& state = shim();
  const std::lock_guard<std::mutex> lock(state.mu);
  return state.installed;
}

IoFaultKind next_io_fault() {
  ShimState& state = shim();
  const std::lock_guard<std::mutex> lock(state.mu);
  if (!state.installed || state.spec.rate <= 0.0) return IoFaultKind::kNone;
  // One independent, reproducible draw per operation index: the decision
  // for op n never depends on which thread got there first.
  const std::uint64_t n = state.ops.fetch_add(1);
  Xoshiro256 rng(state.spec.seed ^ (0x9e3779b97f4a7c15ULL * (n + 1)));
  if (rng.uniform() >= state.spec.rate) return IoFaultKind::kNone;
  switch (rng.uniform_index(3)) {
    case 0:
      return IoFaultKind::kShortWrite;
    case 1:
      return IoFaultKind::kEnospc;
    default:
      return IoFaultKind::kEio;
  }
}

}  // namespace tgi::util
