// Number and unit formatting helpers shared by tables, logs, and harnesses.
#pragma once

#include <string>

#include "util/units.h"

namespace tgi::util {

/// Fixed-point formatting with `precision` fractional digits.
std::string fixed(double v, int precision = 2);

/// Scientific formatting with `precision` significant fractional digits.
std::string scientific(double v, int precision = 3);

/// Percentage with a trailing '%' sign, e.g. 0.1234 -> "12.34%".
std::string percent(double fraction, int precision = 2);

/// Formats with an SI prefix chosen so the mantissa lands in [1, 1000),
/// e.g. si_format(9.01e11, "FLOPS") -> "901.00 GFLOPS".
std::string si_format(double v, const std::string& unit, int precision = 2);

/// Convenience wrappers for the strong unit types.
std::string format(Watts w, int precision = 2);
std::string format(Joules e, int precision = 2);
std::string format(Seconds t, int precision = 2);
std::string format(FlopRate r, int precision = 2);
std::string format(ByteRate r, int precision = 2);

/// Groups thousands in an integer, e.g. 1234567 -> "1,234,567".
std::string with_commas(long long v);

}  // namespace tgi::util
