#include "util/subprocess.h"

#include <fcntl.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "util/error.h"

namespace tgi::util {

namespace {

/// Opens `path` for truncating write and dup2s it onto `target_fd`.
/// Child-side only: failures _exit(127) because throwing across fork is
/// meaningless.
void redirect_or_die(const std::string& path, int target_fd) {
  if (path.empty()) return;
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) ::_exit(127);
  if (::dup2(fd, target_fd) < 0) ::_exit(127);
  ::close(fd);
}

}  // namespace

std::string ExitStatus::describe() const {
  if (exited) return "exit " + std::to_string(code);
  std::string text = "signal " + std::to_string(signal);
  const char* name = ::strsignal(signal);
  if (name != nullptr) text += std::string(" (") + name + ")";
  return text;
}

Subprocess::Subprocess(std::vector<std::string> argv,
                       SubprocessOptions options) {
  TGI_REQUIRE(!argv.empty(), "Subprocess needs a non-empty argv");
  const pid_t pid = ::fork();
  TGI_CHECK(pid >= 0, "fork failed: " << std::strerror(errno));
  if (pid == 0) {
    // Child. Only async-signal-safe calls until exec; any failure exits
    // with the shell's conventional "command not found" code.
    redirect_or_die(options.stdout_path, STDOUT_FILENO);
    redirect_or_die(options.stderr_path, STDERR_FILENO);
    for (const std::string& entry : options.extra_env) {
      const std::size_t eq = entry.find('=');
      if (eq == std::string::npos) ::_exit(127);
      const std::string name = entry.substr(0, eq);
      const std::string value = entry.substr(eq + 1);
      if (::setenv(name.c_str(), value.c_str(), 1) != 0) ::_exit(127);
    }
    std::vector<char*> cargv;
    cargv.reserve(argv.size() + 1);
    for (std::string& arg : argv) cargv.push_back(arg.data());
    cargv.push_back(nullptr);
    ::execvp(cargv[0], cargv.data());
    ::_exit(127);
  }
  pid_ = static_cast<long>(pid);
}

Subprocess::~Subprocess() {
  if (pid_ >= 0 && !waited_) wait();
}

Subprocess::Subprocess(Subprocess&& other) noexcept
    : pid_(other.pid_), waited_(other.waited_), status_(other.status_) {
  other.pid_ = -1;
  other.waited_ = true;
}

const ExitStatus& Subprocess::wait() {
  if (waited_) return status_;
  TGI_CHECK(pid_ >= 0, "wait on a moved-from Subprocess");
  int raw = 0;
  pid_t got = -1;
  do {
    got = ::waitpid(static_cast<pid_t>(pid_), &raw, 0);
  } while (got < 0 && errno == EINTR);
  TGI_CHECK(got == static_cast<pid_t>(pid_),
            "waitpid failed: " << std::strerror(errno));
  waited_ = true;
  if (WIFEXITED(raw)) {
    status_.exited = true;
    status_.code = WEXITSTATUS(raw);
  } else if (WIFSIGNALED(raw)) {
    status_.exited = false;
    status_.signal = WTERMSIG(raw);
  } else {
    status_.exited = false;
    status_.signal = 0;
  }
  return status_;
}

ExitStatus run_process(std::vector<std::string> argv,
                       SubprocessOptions options) {
  Subprocess child(std::move(argv), std::move(options));
  return child.wait();
}

std::string current_executable() {
  char buffer[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buffer, sizeof(buffer) - 1);
  TGI_CHECK(n > 0, "readlink(/proc/self/exe) failed: "
                       << std::strerror(errno));
  buffer[n] = '\0';
  return std::string(buffer);
}

}  // namespace tgi::util
