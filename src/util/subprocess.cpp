#include "util/subprocess.h"

#include <fcntl.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <utility>

#include "util/error.h"

namespace tgi::util {

namespace {

/// Opens `path` for truncating write and dup2s it onto `target_fd`.
/// Child-side only: failures _exit(127) because throwing across fork is
/// meaningless.
void redirect_or_die(const std::string& path, int target_fd) {
  if (path.empty()) return;
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) ::_exit(127);
  if (::dup2(fd, target_fd) < 0) ::_exit(127);
  ::close(fd);
}

/// One supervision poll tick: 2 ms of nanosleep. Deliberately NOT a clock
/// read — the destructor's grace period is counted in ticks, and nothing
/// deterministic ever depends on how long a tick really took.
void sleep_poll_tick() {
  struct timespec ts;
  ts.tv_sec = 0;
  ts.tv_nsec = 2'000'000;
  ::nanosleep(&ts, nullptr);
}

/// SIGTERM → grace → SIGKILL ticks: ~0.5 s for a child that handles
/// SIGTERM promptly, bounded for one that ignores it.
constexpr int kDestructorGraceTicks = 250;

/// Decodes a raw waitpid status word.
ExitStatus decode_status(int raw) {
  ExitStatus status;
  if (WIFEXITED(raw)) {
    status.exited = true;
    status.code = WEXITSTATUS(raw);
  } else if (WIFSIGNALED(raw)) {
    status.exited = false;
    status.signal = WTERMSIG(raw);
  } else {
    status.exited = false;
    status.signal = 0;
  }
  return status;
}

}  // namespace

std::string ExitStatus::describe() const {
  if (exited) return "exit " + std::to_string(code);
  std::string text = "signal " + std::to_string(signal);
  const char* name = ::strsignal(signal);
  if (name != nullptr) text += std::string(" (") + name + ")";
  return text;
}

Subprocess::Subprocess(std::vector<std::string> argv,
                       SubprocessOptions options) {
  TGI_REQUIRE(!argv.empty(), "Subprocess needs a non-empty argv");
  const pid_t pid = ::fork();
  TGI_CHECK(pid >= 0, "fork failed: " << std::strerror(errno));
  if (pid == 0) {
    // Child. Only async-signal-safe calls until exec; any failure exits
    // with the shell's conventional "command not found" code.
    redirect_or_die(options.stdout_path, STDOUT_FILENO);
    redirect_or_die(options.stderr_path, STDERR_FILENO);
    for (const std::string& entry : options.extra_env) {
      const std::size_t eq = entry.find('=');
      if (eq == std::string::npos) ::_exit(127);
      const std::string name = entry.substr(0, eq);
      const std::string value = entry.substr(eq + 1);
      if (::setenv(name.c_str(), value.c_str(), 1) != 0) ::_exit(127);
    }
    std::vector<char*> cargv;
    cargv.reserve(argv.size() + 1);
    for (std::string& arg : argv) cargv.push_back(arg.data());
    cargv.push_back(nullptr);
    ::execvp(cargv[0], cargv.data());
    ::_exit(127);
  }
  pid_ = static_cast<long>(pid);
}

Subprocess::~Subprocess() {
  if (pid_ < 0 || waited_) return;
  // A destructor that blocks in wait() forever on a hung child wedges the
  // whole engine. Escalate instead: ask politely, give a bounded grace
  // period, then force the exit and reap.
  if (try_wait() != nullptr) return;
  kill(SIGTERM);
  for (int tick = 0; tick < kDestructorGraceTicks; ++tick) {
    if (try_wait() != nullptr) return;
    sleep_poll_tick();
  }
  kill(SIGKILL);
  wait();
}

Subprocess::Subprocess(Subprocess&& other) noexcept
    : pid_(other.pid_), waited_(other.waited_), status_(other.status_) {
  other.pid_ = -1;
  other.waited_ = true;
}

const ExitStatus& Subprocess::wait() {
  if (waited_) return status_;
  TGI_CHECK(pid_ >= 0, "wait on a moved-from Subprocess");
  int raw = 0;
  pid_t got = -1;
  do {
    got = ::waitpid(static_cast<pid_t>(pid_), &raw, 0);
  } while (got < 0 && errno == EINTR);
  TGI_CHECK(got == static_cast<pid_t>(pid_),
            "waitpid failed: " << std::strerror(errno));
  waited_ = true;
  status_ = decode_status(raw);
  return status_;
}

const ExitStatus* Subprocess::try_wait() {
  if (waited_) return &status_;
  TGI_CHECK(pid_ >= 0, "try_wait on a moved-from Subprocess");
  int raw = 0;
  pid_t got = -1;
  do {
    got = ::waitpid(static_cast<pid_t>(pid_), &raw, WNOHANG);
  } while (got < 0 && errno == EINTR);
  TGI_CHECK(got >= 0, "waitpid(WNOHANG) failed: " << std::strerror(errno));
  if (got == 0) return nullptr;  // still running
  waited_ = true;
  status_ = decode_status(raw);
  return &status_;
}

void Subprocess::kill(int sig) {
  if (waited_ || pid_ < 0) return;
  // ESRCH here means the child exited between our probe and the signal;
  // the next try_wait()/wait() reaps it. Any other failure is a caller
  // bug (bad signal number).
  if (::kill(static_cast<pid_t>(pid_), sig) != 0) {
    TGI_CHECK(errno == ESRCH,
              "kill(" << sig << ") failed: " << std::strerror(errno));
  }
}

ExitStatus run_process(std::vector<std::string> argv,
                       SubprocessOptions options) {
  Subprocess child(std::move(argv), std::move(options));
  return child.wait();
}

std::string current_executable() {
  char buffer[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buffer, sizeof(buffer) - 1);
  TGI_CHECK(n > 0, "readlink(/proc/self/exe) failed: "
                       << std::strerror(errno));
  buffer[n] = '\0';
  return std::string(buffer);
}

}  // namespace tgi::util
