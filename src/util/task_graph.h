// Deterministic dependency-graph executor over the fixed worker pool.
//
// The sweep engine's unit of parallelism used to be a whole sweep point:
// parallel_for over points, a barrier at the end, everything inside a
// point serial. This executor makes the unit a NODE — any callable with
// explicit dependency edges — so a point can decompose into per-benchmark
// tasks (harness/taskgraph.h) while the scheduling stays as boring as the
// determinism contract (DESIGN.md §3b, §12) demands: nodes are identified
// by their insertion index, ready nodes are dispatched through the one
// sanctioned util::ThreadPool (no new raw threads, no work stealing), and
// every result-bearing merge happens inside a successor node in fixed
// index order — never completion order.
//
// Execution semantics:
//  - run(threads <= 1) executes on the calling thread, always picking the
//    LOWEST-id ready node next — the reference serial order.
//  - run(threads > 1) seeds the pool with the ready set in id order;
//    each completing node submits its newly ready successors from the
//    worker (ThreadPool::submit is thread-safe). Which node runs where is
//    scheduling noise; anything that reaches an artifact must flow through
//    a join node's index-ordered merge.
//  - A cycle is an InternalError (graph construction bug), detected before
//    any node runs.
//  - A throwing node poisons its transitive dependents: they are SKIPPED
//    (never run), every other node still executes, and run() rethrows the
//    error of the smallest failed node id — deterministic at every thread
//    count even when several nodes throw.
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/thread_pool.h"

namespace tgi::util {

/// A single-use DAG of tasks. Build with add_node/add_edge, execute with
/// run(). Not thread-safe during construction; run() synchronizes
/// internally.
class TaskGraph {
 public:
  using NodeId = std::size_t;

  /// Adds a node and returns its id (insertion index — the id order is the
  /// serial reference order and the error-priority order). `label` names
  /// the node in errors and profiles; `fn` must be non-null.
  NodeId add_node(std::string label, std::function<void()> fn);

  /// Declares that `from` must complete before `to` may start.
  /// Precondition: both ids exist. Self-edges and duplicate edges are
  /// legal input; a self-edge simply makes the graph cyclic, which run()
  /// rejects.
  void add_edge(NodeId from, NodeId to);

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }

  /// Executes the graph. `threads` follows the sweep-engine convention:
  /// 0 = ThreadPool::default_thread_count(), 1 = inline serial execution,
  /// N > 1 = a pool clamped to the node count. `hook` brackets every
  /// executed node body (ThreadPool::TaskHook semantics; worker 0 and the
  /// serial execution index in serial mode) — observation only, and a
  /// throwing hook is treated like a throwing node. Single-use: a graph
  /// that has run cannot run again.
  void run(std::size_t threads, const ThreadPool::TaskHook& hook = {});

  /// Post-run inspection (primarily for tests): whether a node's body
  /// executed to completion, was skipped because a transitive dependency
  /// failed, or threw.
  [[nodiscard]] bool ran(NodeId id) const;
  [[nodiscard]] bool skipped(NodeId id) const;
  [[nodiscard]] bool failed(NodeId id) const;

 private:
  enum class Status : unsigned char { kPending, kRan, kFailed, kSkipped };

  struct Node {
    std::string label;
    std::function<void()> fn;
    std::vector<NodeId> successors;
    std::size_t dependencies = 0;  // incoming-edge count
  };

  void check_acyclic() const;
  void run_serial(const ThreadPool::TaskHook& hook);
  void run_parallel(std::size_t threads, const ThreadPool::TaskHook& hook);
  /// Marks `id` finished with `status`, decrements successors, cascades
  /// skips through poisoned dependents, and appends newly runnable node
  /// ids to `ready` in ascending id order. Caller holds whatever lock
  /// guards the status arrays (none in serial mode).
  void finish_node(NodeId id, Status status, std::vector<NodeId>& ready);
  void record_error(NodeId id, std::exception_ptr error);
  void rethrow_first_error();

  std::vector<Node> nodes_;
  bool executed_ = false;
  // run() working state (guarded by mu_ in parallel mode).
  std::vector<Status> status_;
  std::vector<std::size_t> waiting_;   // unfinished-dependency counts
  std::vector<bool> poisoned_;         // some dependency failed or skipped
  std::vector<std::pair<NodeId, std::exception_ptr>> errors_;
  std::mutex mu_;
};

}  // namespace tgi::util
