// A simulated wall clock for discrete-cost models.
//
// Substrates that model hardware timing (the block device, the page cache,
// the filesystem) advance this clock by the modeled cost of each operation
// instead of sleeping, so a "30-second" IOzone run simulates in
// microseconds of host time while producing the same timeline a real run
// would hand to the power meter.
#pragma once

#include "util/error.h"
#include "util/units.h"

namespace tgi::util {

/// Monotonically advancing simulated time.
class SimClock {
 public:
  SimClock() = default;

  /// Current simulated time since construction (or last reset).
  [[nodiscard]] Seconds now() const { return now_; }

  /// Advances time by `dt`. Precondition: dt >= 0.
  void advance(Seconds dt) {
    TGI_REQUIRE(dt.value() >= 0.0, "clock cannot run backwards");
    now_ += dt;
  }

  /// Rewinds to zero (new measurement epoch).
  void reset() { now_ = Seconds(0.0); }

 private:
  Seconds now_{0.0};
};

}  // namespace tgi::util
