// Deterministic I/O fault injection for the publish paths (DESIGN.md §15).
//
// The §9 fault plane makes *measurements* fail on purpose; this shim does
// the same for the filesystem layer the campaign engine's durability story
// rests on: short writes, ENOSPC, EIO — the failure modes of a multi-day
// metered campaign writing to real disks. The two audited write paths
// consult it:
//
//   - util::atomic_write_file / util::AtomicFile: an injected fault fails
//     the STAGING write; the temp file is removed and the destination is
//     left byte-for-byte intact, so a failed publish can never tear a
//     visible artifact;
//   - harness::CheckpointJournal::record: an injected fault tears (short
//     write) or aborts (ENOSPC/EIO) one append; the per-record CRC
//     quarantines the torn tail on read, exactly like a SIGKILL mid-append.
//
// Faults are decided per guarded operation from a seeded Xoshiro256 keyed
// on (seed, operation index): a given spec replays the identical fault
// sequence, which is what makes the worker-process fault campaigns in
// ci.sh stage 12 reproducible. The shim is process-wide and OFF by
// default; the campaign engine only ever installs it inside `tgi_serve
// --worker` processes (TGI_SERVE_WORKER_IO_FAULTS), so the engine's own
// emission and in-process heal path never fault and recovery always
// converges.
#pragma once

#include <cstdint>
#include <string>

namespace tgi::util {

/// What the shim makes the next guarded write do.
enum class IoFaultKind {
  kNone,        ///< write proceeds normally
  kShortWrite,  ///< write a torn prefix, then fail
  kEnospc,      ///< fail before writing anything (disk full)
  kEio,         ///< fail before writing anything (I/O error)
};

/// Stable lowercase name ("none", "short-write", "enospc", "eio").
[[nodiscard]] const char* io_fault_name(IoFaultKind kind);

/// The injection policy: every guarded write faults independently with
/// probability `rate`, the kind drawn uniformly from the three failures.
struct IoFaultSpec {
  std::uint64_t seed = 0;
  double rate = 0.0;  ///< per-operation fault probability in [0, 1]

  void validate() const;
};

/// Parses "<rate>" or "seed=N,rate=P" (either order, both optional keys in
/// the key=value form). Throws TgiError on anything else.
[[nodiscard]] IoFaultSpec parse_io_fault_spec(const std::string& text);

/// Installs the process-wide fault policy (replacing any previous one).
/// Thread-safe; install before spawning writers for a deterministic
/// operation order.
void install_io_faults(const IoFaultSpec& spec);

/// Removes the policy: next_io_fault() returns kNone until reinstalled.
void clear_io_faults();

[[nodiscard]] bool io_faults_installed();

/// Draws the decision for the next guarded write operation and advances
/// the operation counter. kNone (and no counter traffic beyond one atomic
/// increment) when no policy is installed.
[[nodiscard]] IoFaultKind next_io_fault();

/// RAII install/clear for tests.
class ScopedIoFaults {
 public:
  explicit ScopedIoFaults(const IoFaultSpec& spec) {
    install_io_faults(spec);
  }
  ~ScopedIoFaults() { clear_io_faults(); }

  ScopedIoFaults(const ScopedIoFaults&) = delete;
  ScopedIoFaults& operator=(const ScopedIoFaults&) = delete;
};

}  // namespace tgi::util
