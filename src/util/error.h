// Error-handling primitives for the TGI library.
//
// Policy (per C++ Core Guidelines E.2/E.14): throw `TgiError` for violated
// preconditions and unrecoverable runtime failures; never return sentinel
// values. The TGI_CHECK/TGI_REQUIRE macros capture file:line so harness
// failures in long sweeps are attributable.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace tgi::util {

/// Base exception for all failures originating inside the TGI library.
class TgiError : public std::runtime_error {
 public:
  explicit TgiError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a caller violates a documented precondition.
class PreconditionError : public TgiError {
 public:
  explicit PreconditionError(const std::string& what) : TgiError(what) {}
};

/// Thrown when an internal invariant fails (a library bug, not a user error).
class InternalError : public TgiError {
 public:
  explicit InternalError(const std::string& what) : TgiError(what) {}
};

namespace detail {
[[noreturn]] void throw_precondition(const char* expr, const char* file,
                                     int line, const std::string& msg);
[[noreturn]] void throw_internal(const char* expr, const char* file, int line,
                                 const std::string& msg);
}  // namespace detail

}  // namespace tgi::util

/// Validate a caller-facing precondition; throws PreconditionError.
#define TGI_REQUIRE(cond, msg)                                       \
  do {                                                               \
    if (!(cond)) {                                                   \
      ::std::ostringstream tgi_oss_;                                 \
      tgi_oss_ << msg; /* NOLINT */                                  \
      ::tgi::util::detail::throw_precondition(#cond, __FILE__,       \
                                              __LINE__, tgi_oss_.str()); \
    }                                                                \
  } while (false)

/// Validate an internal invariant; throws InternalError.
#define TGI_CHECK(cond, msg)                                             \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::std::ostringstream tgi_oss_;                                     \
      tgi_oss_ << msg; /* NOLINT */                                      \
      ::tgi::util::detail::throw_internal(#cond, __FILE__, __LINE__,     \
                                          tgi_oss_.str());               \
    }                                                                    \
  } while (false)
