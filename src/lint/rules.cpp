#include "lint/rules.h"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <utility>

#include "util/error.h"

namespace tgi::lint {

namespace {

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

/// Lowercase copy, ASCII only (identifier names are ASCII).
std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

void add(std::vector<Violation>& out, const SourceFile& file, std::size_t line,
         std::string_view rule, std::string message) {
  out.push_back(Violation{file.path, line, std::string(rule), std::move(message)});
}

// --- banned-random --------------------------------------------------------

/// Random-number machinery that bypasses the seeded util::Xoshiro256 policy.
/// <random> *distributions* are fine (Xoshiro256 satisfies
/// UniformRandomBitGenerator); engines and entropy sources are not.
class BannedRandomRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const override { return "banned-random"; }
  [[nodiscard]] std::string_view description() const override {
    return "unseeded / non-reproducible randomness outside util/rng "
           "(use seeded util::Xoshiro256)";
  }

  void check(const SourceFile& file, std::vector<Violation>& out) const override {
    if (starts_with(file.path, "src/util/rng")) return;  // the one sanctioned home
    static constexpr std::string_view kBannedCalls[] = {
        "rand", "srand", "rand_r", "drand48", "lrand48", "srand48",
    };
    static constexpr std::string_view kBannedTypes[] = {
        "mt19937",       "mt19937_64",           "minstd_rand",
        "minstd_rand0",  "default_random_engine", "random_device",
        "ranlux24",      "ranlux48",              "knuth_b",
    };
    for (std::size_t i = 0; i < file.code.size(); ++i) {
      const std::string& line = file.code[i];
      for (std::string_view name : kBannedCalls) {
        if (contains_call(line, name)) {
          add(out, file, i + 1, id(),
              std::string(name) +
                  "() is not reproducible; use seeded util::Xoshiro256");
        }
      }
      for (std::string_view name : kBannedTypes) {
        if (contains_identifier(line, name)) {
          add(out, file, i + 1, id(),
              "std::" + std::string(name) +
                  " bypasses the seeded-RNG policy; use util::Xoshiro256");
        }
      }
    }
  }
};

// --- raw-unit-double ------------------------------------------------------

/// `double watts` style parameters/members in public library headers.
/// Physical quantities crossing module boundaries must use the strong types
/// in util/units.h (units::Watts, units::Joules, units::Seconds, ...).
class RawUnitDoubleRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const override { return "raw-unit-double"; }
  [[nodiscard]] std::string_view description() const override {
    return "raw double with a unit-suspicious name in a library header "
           "(use util/units.h strong types)";
  }

  void check(const SourceFile& file, std::vector<Violation>& out) const override {
    if (file.kind != FileKind::kLibraryHeader) return;
    for (std::size_t i = 0; i < file.code.size(); ++i) {
      scan_line(file, i, out);
    }
  }

 private:
  static bool suspicious_name(std::string_view name) {
    static constexpr std::string_view kUnitFragments[] = {
        "watt", "joule", "second", "energy", "power", "flops",
    };
    // Derived ratios (flops_per_watt, power_ratio, efficiency values) are
    // dimensionless-by-convention and legitimately raw doubles; only bare
    // quantities must be strong-typed.
    static constexpr std::string_view kRatioMarkers[] = {
        "per_", "_per", "ratio", "efficiency", "factor", "fraction",
    };
    const std::string lower = to_lower(name);
    for (std::string_view marker : kRatioMarkers) {
      if (lower.find(marker) != std::string::npos) return false;
    }
    for (std::string_view fragment : kUnitFragments) {
      if (lower.find(fragment) != std::string::npos) return true;
    }
    return false;
  }

  void scan_line(const SourceFile& file, std::size_t index,
                 std::vector<Violation>& out) const {
    const std::string& line = file.code[index];
    std::size_t pos = 0;
    while ((pos = line.find("double", pos)) != std::string::npos) {
      const std::size_t start = pos;
      pos += 6;  // length of "double"
      // Whole-identifier check for the keyword itself.
      if (start > 0 && is_ident_char(line[start - 1])) continue;
      if (pos < line.size() && is_ident_char(line[pos])) continue;
      // Skip whitespace, then collect the declared name, if any.
      std::size_t j = pos;
      while (j < line.size() && line[j] == ' ') ++j;
      std::size_t name_end = j;
      while (name_end < line.size() && is_ident_char(line[name_end])) {
        ++name_end;
      }
      if (name_end == j) continue;  // `double)` / `double>` / end of line
      // `double foo(` is a function returning double (conversion helpers
      // like in_megaflops), not a stored quantity — skip it.
      std::size_t after = name_end;
      while (after < line.size() && line[after] == ' ') ++after;
      if (after < line.size() && line[after] == '(') continue;
      const std::string_view name =
          std::string_view(line).substr(j, name_end - j);
      if (suspicious_name(name)) {
        add(out, file, index + 1, id(),
            "'double " + std::string(name) +
                "' in a public header; pass util/units.h strong types "
                "across module boundaries");
      }
    }
  }
};

// --- raw-aligned-alloc ----------------------------------------------------

/// Raw aligned-allocation calls outside util/simd. The aligned-lane
/// substrate (util/simd.h, DESIGN.md §14) is the one sanctioned home for
/// alignment: its AlignedAllocator flows through the sized,
/// alignment-aware global operators, so ASan tracks every byte and the
/// deallocation always matches. Ad-hoc std::aligned_alloc /
/// posix_memalign / _mm_malloc (and direct operator new with
/// std::align_val_t) reintroduce malloc/free-family mismatches and
/// scatter the alignment guarantee the kernels rely on.
class RawAlignedAllocRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const override {
    return "raw-aligned-alloc";
  }
  [[nodiscard]] std::string_view description() const override {
    return "raw aligned allocation (aligned_alloc, posix_memalign, "
           "_mm_malloc, operator new with std::align_val_t) outside "
           "util/simd (use util::simd::Lane / AlignedAllocator)";
  }

  void check(const SourceFile& file, std::vector<Violation>& out) const override {
    if (!starts_with(file.path, "src/") && !starts_with(file.path, "tools/")) {
      return;
    }
    if (starts_with(file.path, "src/util/simd")) return;  // the sanctioned home
    static constexpr std::string_view kCalls[] = {
        "aligned_alloc", "posix_memalign", "_mm_malloc"};
    for (std::size_t i = 0; i < file.code.size(); ++i) {
      const std::string& line = file.code[i];
      for (std::string_view name : kCalls) {
        if (contains_call(line, name)) {
          add(out, file, i + 1, id(),
              std::string(name) +
                  "() outside util/simd; aligned lanes come from "
                  "util::simd::make_lane / AlignedAllocator");
        }
      }
      if (contains_identifier(line, "align_val_t")) {
        add(out, file, i + 1, id(),
            "operator new(std::align_val_t) outside util/simd; aligned "
            "lanes come from util::simd::make_lane / AlignedAllocator");
      }
    }
  }
};

// --- raw-process-spawn ----------------------------------------------------

/// Raw process-control calls outside util/subprocess. util::Subprocess is
/// the one sanctioned home for fork/exec/waitpid (DESIGN.md §15): it owns
/// the fd redirection, the non-blocking try_wait()/kill() supervision
/// surface, and a destructor that SIGTERM→SIGKILL-escalates instead of
/// blocking forever on a hung child. Ad-hoc fork()/system()/popen() calls
/// bypass all of that — an unsupervised child is exactly the campaign-hang
/// failure mode the Supervisor exists to close — and system()/popen()
/// additionally launder argv through an unauditable shell.
class RawProcessSpawnRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const override {
    return "raw-process-spawn";
  }
  [[nodiscard]] std::string_view description() const override {
    return "raw process control (fork, exec*, waitpid, system, popen, "
           "posix_spawn) outside util/subprocess (spawn children through "
           "util::Subprocess)";
  }

  void check(const SourceFile& file, std::vector<Violation>& out) const override {
    if (!starts_with(file.path, "src/") && !starts_with(file.path, "tools/")) {
      return;
    }
    // The one sanctioned home for process control.
    if (starts_with(file.path, "src/util/subprocess")) return;
    static constexpr std::string_view kCalls[] = {
        "fork",   "vfork",   "execl",       "execlp",
        "execle", "execv",   "execvp",      "execvpe",
        "execve", "fexecve", "waitpid",     "wait3",
        "wait4",  "system",  "popen",       "posix_spawn",
        "posix_spawnp"};
    for (std::size_t i = 0; i < file.code.size(); ++i) {
      const std::string& line = file.code[i];
      for (std::string_view name : kCalls) {
        if (contains_call(line, name)) {
          add(out, file, i + 1, id(),
              std::string(name) +
                  "() outside util/subprocess; spawn and supervise "
                  "children through util::Subprocess");
        }
      }
    }
  }
};

// --- raw-thread -----------------------------------------------------------

/// std::thread / std::jthread / std::async outside util/thread_pool.
/// Ad-hoc threads fragment the determinism story (unordered side effects)
/// and TSan coverage; concurrency flows through util::ThreadPool.
class RawThreadRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const override { return "raw-thread"; }
  [[nodiscard]] std::string_view description() const override {
    return "raw std::thread / std::jthread / std::async outside "
           "util/thread_pool (route concurrency through util::ThreadPool)";
  }

  void check(const SourceFile& file, std::vector<Violation>& out) const override {
    // The one sanctioned home for raw threads.
    if (starts_with(file.path, "src/util/thread_pool")) return;
    static constexpr std::string_view kBanned[] = {"thread", "jthread",
                                                   "async"};
    for (std::size_t i = 0; i < file.code.size(); ++i) {
      const std::string& line = file.code[i];
      for (std::string_view name : kBanned) {
        if (mentions_std(line, name)) {
          add(out, file, i + 1, id(),
              "std::" + std::string(name) +
                  " outside util/thread_pool; use util::ThreadPool so "
                  "sweeps stay deterministic and TSan stays meaningful");
        }
      }
    }
  }

 private:
  /// True if `line` contains `std::<name>` with whole-identifier
  /// boundaries on both `std` and `<name>` (so std::this_thread and
  /// my_thread never match).
  static bool mentions_std(std::string_view line, std::string_view name) {
    const std::string needle = "std::" + std::string(name);
    std::size_t pos = 0;
    while ((pos = line.find(needle, pos)) != std::string_view::npos) {
      const bool left_ok = pos == 0 || !is_ident_char(line[pos - 1]);
      const std::size_t end = pos + needle.size();
      const bool right_ok = end >= line.size() || !is_ident_char(line[end]);
      if (left_ok && right_ok) return true;
      pos += 1;
    }
    return false;
  }
};

// --- relative-include -----------------------------------------------------

/// `#include "../foo.h"` — include paths must be repo-relative from src/.
class RelativeIncludeRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const override {
    return "relative-include";
  }
  [[nodiscard]] std::string_view description() const override {
    return "relative #include path (includes are repo-relative from src/)";
  }

  void check(const SourceFile& file, std::vector<Violation>& out) const override {
    for (std::size_t i = 0; i < file.raw.size(); ++i) {
      const std::string& line = file.raw[i];
      std::size_t pos = line.find('#');
      if (pos == std::string::npos) continue;
      // Only leading whitespace may precede the '#'.
      if (line.find_first_not_of(" \t") != pos) continue;
      std::size_t kw = line.find_first_not_of(" \t", pos + 1);
      if (kw == std::string::npos || line.compare(kw, 7, "include") != 0) {
        continue;
      }
      const std::size_t quote = line.find('"', kw + 7);
      if (quote == std::string::npos) continue;
      const std::string_view target = std::string_view(line).substr(quote + 1);
      if (starts_with(target, "../") || starts_with(target, "./")) {
        add(out, file, i + 1, id(),
            "relative include; write it repo-relative from src/ "
            "(e.g. #include \"core/tgi.h\")");
      }
    }
  }
};

// --- assert-macro ---------------------------------------------------------

/// Bare assert() in library code. assert vanishes under NDEBUG and aborts
/// instead of throwing; library invariants use TGI_REQUIRE / TGI_CHECK.
class AssertMacroRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const override { return "assert-macro"; }
  [[nodiscard]] std::string_view description() const override {
    return "assert() in library code (use TGI_REQUIRE / TGI_CHECK)";
  }

  void check(const SourceFile& file, std::vector<Violation>& out) const override {
    if (!is_library(file.kind)) return;
    for (std::size_t i = 0; i < file.code.size(); ++i) {
      // contains_call's whole-identifier check already rejects
      // static_assert, so one probe suffices.
      if (contains_call(file.code[i], "assert")) {
        add(out, file, i + 1, id(),
            "assert() aborts and vanishes under NDEBUG; use TGI_REQUIRE "
            "(caller bug) or TGI_CHECK (internal bug)");
      }
    }
  }
};

// --- cout-in-library ------------------------------------------------------

/// Direct stdout/stderr writes from static-library modules. Libraries
/// return values and log through util/log; only executables print.
class CoutInLibraryRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const override {
    return "cout-in-library";
  }
  [[nodiscard]] std::string_view description() const override {
    return "stdout/stderr writes in a static-library module (go through "
           "util/log)";
  }

  void check(const SourceFile& file, std::vector<Violation>& out) const override {
    if (!is_library(file.kind)) return;
    if (starts_with(file.path, "src/util/log")) return;  // the sink itself
    static constexpr std::string_view kStreams[] = {"cout", "cerr"};
    static constexpr std::string_view kCalls[] = {"printf", "fprintf", "puts"};
    for (std::size_t i = 0; i < file.code.size(); ++i) {
      const std::string& line = file.code[i];
      for (std::string_view name : kStreams) {
        if (contains_identifier(line, name)) {
          add(out, file, i + 1, id(),
              "std::" + std::string(name) +
                  " in library code; use TGI_LOG_* or return the data");
        }
      }
      for (std::string_view name : kCalls) {
        if (contains_call(line, name)) {
          add(out, file, i + 1, id(),
              std::string(name) +
                  "() in library code; use TGI_LOG_* or return the data");
        }
      }
    }
  }
};

// --- nonatomic-output-write -----------------------------------------------

/// Direct std::ofstream use in the output-emitting layers (src/harness,
/// src/obs, src/serve, tools). A bare ofstream that dies mid-write (crash, SIGKILL,
/// ENOSPC) leaves a truncated file where a good one may have stood;
/// results, traces, and figure CSVs must go through util::AtomicFile /
/// util::atomic_write_file (write-to-temp + rename, DESIGN.md §11).
/// Deliberate append-mode writers (the checkpoint journal, which replaces
/// rename atomicity with per-record checksums) carry a per-line waiver.
class NonatomicOutputWriteRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const override {
    return "nonatomic-output-write";
  }
  [[nodiscard]] std::string_view description() const override {
    return "direct std::ofstream in src/harness, src/obs, src/serve, or "
           "tools (publish files through util::AtomicFile)";
  }

  void check(const SourceFile& file, std::vector<Violation>& out) const override {
    if (!starts_with(file.path, "src/harness/") &&
        !starts_with(file.path, "src/obs/") &&
        !starts_with(file.path, "src/serve/") &&
        !starts_with(file.path, "tools/")) {
      return;
    }
    for (std::size_t i = 0; i < file.code.size(); ++i) {
      if (contains_identifier(file.code[i], "ofstream")) {
        add(out, file, i + 1, id(),
            "std::ofstream writes are not crash-safe; publish through "
            "util::AtomicFile (or waive a deliberate append-mode journal)");
      }
    }
  }
};

// --- unseeded-xoshiro -----------------------------------------------------

/// Default-constructed util::Xoshiro256. The defaulted seed parameter
/// makes `Xoshiro256 rng;` compile, but every such generator shares one
/// stream — a silent correlation bug in anything statistical, and a
/// determinism hazard for the fault plane, whose contract is that each
/// decision derives a fresh generator from (seed, indices).
class UnseededXoshiroRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const override {
    return "unseeded-xoshiro";
  }
  [[nodiscard]] std::string_view description() const override {
    return "default-constructed util::Xoshiro256 (pass an explicit seed "
           "expression)";
  }

  void check(const SourceFile& file, std::vector<Violation>& out) const override {
    // The class itself (and its default-seed constant) lives here.
    if (starts_with(file.path, "src/util/rng")) return;
    for (std::size_t i = 0; i < file.code.size(); ++i) {
      if (default_constructs(file.code[i])) {
        add(out, file, i + 1, id(),
            "default-constructed Xoshiro256 reuses the shared default "
            "seed; pass an explicit seed expression");
      }
    }
  }

 private:
  /// True if `line` declares a Xoshiro256 without constructor arguments:
  /// `Xoshiro256 rng;` / `Xoshiro256 rng_{};` / `= Xoshiro256{};` /
  /// `Xoshiro256()`. Non-empty argument lists, parameters
  /// (`Xoshiro256 rng,` / `Xoshiro256& rng`), and return types are left
  /// alone.
  static bool default_constructs(std::string_view line) {
    std::size_t pos = 0;
    static constexpr std::string_view kType = "Xoshiro256";
    while ((pos = line.find(kType, pos)) != std::string_view::npos) {
      const std::size_t start = pos;
      pos += kType.size();
      if (start > 0 && is_ident_char(line[start - 1])) continue;
      if (pos < line.size() && is_ident_char(line[pos])) continue;
      // Optional declared name (absent for temporaries like Xoshiro256{}).
      const std::size_t name_begin = skip_spaces(line, pos);
      std::size_t name_end = name_begin;
      while (name_end < line.size() && is_ident_char(line[name_end])) {
        ++name_end;
      }
      const bool named = name_end > name_begin;
      const std::size_t j = skip_spaces(line, name_end);
      if (j >= line.size()) continue;
      // `Xoshiro256 rng;` — a named declaration ending the statement.
      if (named && line[j] == ';') return true;
      // Empty brace-init on a declaration or a temporary, and the
      // argument-less temporary `Xoshiro256()`. A *named* `rng()` is a
      // function declaration (most vexing parse), not a generator.
      if (line[j] == '{' || (!named && line[j] == '(')) {
        const char close = line[j] == '{' ? '}' : ')';
        const std::size_t k = skip_spaces(line, j + 1);
        if (k < line.size() && line[k] == close) return true;
      }
    }
    return false;
  }

  static std::size_t skip_spaces(std::string_view line, std::size_t j) {
    while (j < line.size() && line[j] == ' ') ++j;
    return j;
  }
};

// --- shared cross-line matching helpers -----------------------------------

constexpr std::size_t kNpos = std::string_view::npos;

/// Every whole-identifier occurrence of `ident` in `text`.
std::vector<std::size_t> identifier_positions(std::string_view text,
                                              std::string_view ident) {
  std::vector<std::size_t> positions;
  std::size_t pos = 0;
  while ((pos = text.find(ident, pos)) != kNpos) {
    const bool left_ok = pos == 0 || !is_ident_char(text[pos - 1]);
    const std::size_t end = pos + ident.size();
    const bool right_ok = end >= text.size() || !is_ident_char(text[end]);
    if (left_ok && right_ok) positions.push_back(pos);
    pos += 1;
  }
  return positions;
}

/// Skips spaces, tabs, and newlines (the flat stream keeps line breaks).
std::size_t skip_layout(std::string_view text, std::size_t i) {
  while (i < text.size() &&
         (text[i] == ' ' || text[i] == '\t' || text[i] == '\n')) {
    ++i;
  }
  return i;
}

/// Position of the delimiter matching the opener at `text[open]`, or npos.
std::size_t matching_close(std::string_view text, std::size_t open, char oc,
                           char cc) {
  int depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    if (text[i] == oc) {
      ++depth;
    } else if (text[i] == cc) {
      --depth;
      if (depth == 0) return i;
    }
  }
  return kNpos;
}

/// Position of the '>' matching the '<' at `text[open]`, or npos. Counting
/// is enough for declaration-position template argument lists; `->` is
/// skipped so `map<K, decltype(f()->g())>` still balances.
std::size_t matching_angle(std::string_view text, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    if (text[i] == '<') {
      ++depth;
    } else if (text[i] == '>' && (i == 0 || text[i - 1] != '-')) {
      --depth;
      if (depth == 0) return i;
    }
  }
  return kNpos;
}

// --- unordered-iteration-in-output ----------------------------------------

/// Range-for over a std::unordered_map / std::unordered_set in the layers
/// that feed published artifacts (src/harness, src/obs, src/core,
/// src/serve, tools).
/// Hash-table iteration order is unspecified and may differ across
/// standard libraries and runs, so letting it reach a CSV row order, a
/// trace event order, or a stdout transcript silently breaks the
/// byte-reproducibility contract. Matched on the cross-line token stream:
/// container declarations are collected first (across line breaks), then
/// every range-for whose range expression names one of them — or names an
/// unordered container type directly — is flagged.
class UnorderedIterationRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const override {
    return "unordered-iteration-in-output";
  }
  [[nodiscard]] std::string_view description() const override {
    return "range-for over std::unordered_map/unordered_set in an "
           "output-emitting layer (hash order could reach a published "
           "artifact; use an ordered container or sort first)";
  }

  void check(const SourceFile& file, std::vector<Violation>& out) const override {
    if (!starts_with(file.path, "src/harness/") &&
        !starts_with(file.path, "src/obs/") &&
        !starts_with(file.path, "src/core/") &&
        !starts_with(file.path, "src/serve/") &&
        !starts_with(file.path, "tools/")) {
      return;
    }
    const std::string_view flat = file.flat;
    const std::vector<std::string> names = declared_container_names(flat);
    for (const std::size_t pos : identifier_positions(flat, "for")) {
      const std::size_t open = skip_layout(flat, pos + 3);
      if (open >= flat.size() || flat[open] != '(') continue;
      const std::size_t close = matching_close(flat, open, '(', ')');
      if (close == kNpos) continue;
      const std::size_t colon = range_for_colon(flat, open + 1, close);
      if (colon == kNpos) continue;
      const std::string_view range = flat.substr(colon + 1, close - colon - 1);
      std::string culprit;
      if (contains_identifier(range, "unordered_map") ||
          contains_identifier(range, "unordered_set")) {
        culprit = "an unordered container expression";
      } else {
        for (const std::string& name : names) {
          if (contains_identifier(range, name)) {
            culprit = "'" + name + "'";
            break;
          }
        }
      }
      if (!culprit.empty()) {
        add(out, file, line_at_offset(file, pos), id(),
            "range-for over " + culprit +
                " iterates in unspecified hash order, which can reach a "
                "published artifact; use std::map/std::set or sort before "
                "emitting");
      }
    }
  }

 private:
  /// Names declared with an unordered container type anywhere in the file
  /// (variables, members, parameters) — `std::unordered_map<K, V> name`.
  static std::vector<std::string> declared_container_names(
      std::string_view flat) {
    std::vector<std::string> names;
    for (std::string_view type : {"unordered_map", "unordered_set"}) {
      for (const std::size_t pos : identifier_positions(flat, type)) {
        std::size_t i = skip_layout(flat, pos + type.size());
        if (i >= flat.size() || flat[i] != '<') continue;
        const std::size_t close = matching_angle(flat, i);
        if (close == kNpos) continue;
        i = skip_layout(flat, close + 1);
        while (i < flat.size() && (flat[i] == '&' || flat[i] == '*')) {
          i = skip_layout(flat, i + 1);
        }
        std::size_t end = i;
        while (end < flat.size() && is_ident_char(flat[end])) ++end;
        if (end > i) names.emplace_back(flat.substr(i, end - i));
      }
    }
    return names;
  }

  /// Offset of the range-for ':' at paren depth 0 inside (begin, end), or
  /// npos for a classic `for (;;)` (top-level ';') / no colon. `::` never
  /// counts.
  static std::size_t range_for_colon(std::string_view flat, std::size_t begin,
                                     std::size_t end) {
    int depth = 0;
    for (std::size_t i = begin; i < end; ++i) {
      const char c = flat[i];
      if (c == '(' || c == '[' || c == '{') {
        ++depth;
      } else if (c == ')' || c == ']' || c == '}') {
        --depth;
      } else if (depth == 0 && c == ';') {
        return kNpos;  // classic three-clause for
      } else if (depth == 0 && c == ':') {
        if (i + 1 < end && flat[i + 1] == ':') {
          ++i;  // skip '::'
        } else if (i > begin && flat[i - 1] == ':') {
          continue;
        } else {
          return i;
        }
      }
    }
    return kNpos;
  }
};

// --- wall-clock-in-deterministic-path -------------------------------------

/// Wall-clock reads in library code or tools. Every published number lives
/// on the simulated timeline (util/sim_clock, DESIGN.md §10): a real clock
/// read in the deterministic path makes output depend on host speed and
/// scheduling. The two quarantined homes are excluded wholesale
/// (util/thread_pool's internals, the obs wall-clock profile channel that
/// is documented as non-deterministic and never byte-compared); the native
/// real-kernel timing helpers in src/kernels carry documented per-line
/// waivers because timing real execution is their entire job.
class WallClockRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const override {
    return "wall-clock-in-deterministic-path";
  }
  [[nodiscard]] std::string_view description() const override {
    return "wall-clock read (system/steady/high_resolution_clock, time(), "
           "clock_gettime()) in src/ or tools outside the quarantined "
           "thread-pool and obs-profile homes";
  }

  void check(const SourceFile& file, std::vector<Violation>& out) const override {
    if (!starts_with(file.path, "src/") && !starts_with(file.path, "tools/")) {
      return;
    }
    if (starts_with(file.path, "src/util/thread_pool") ||
        starts_with(file.path, "src/obs/profile")) {
      return;  // the documented wall-clock homes
    }
    static constexpr std::string_view kClocks[] = {
        "system_clock", "steady_clock", "high_resolution_clock"};
    static constexpr std::string_view kCalls[] = {"time", "clock_gettime"};
    for (std::size_t i = 0; i < file.code.size(); ++i) {
      const std::string& line = file.code[i];
      for (std::string_view name : kClocks) {
        if (contains_identifier(line, name)) {
          add(out, file, i + 1, id(),
              "std::chrono::" + std::string(name) +
                  " in the deterministic path; results live on simulated "
                  "time — waive only documented native-timing/profiling "
                  "homes");
        }
      }
      for (std::string_view name : kCalls) {
        if (contains_call(line, name)) {
          add(out, file, i + 1, id(),
              std::string(name) +
                  "() reads the wall clock in the deterministic path; "
                  "results live on simulated time");
        }
      }
    }
  }
};

// --- ref-capture-in-parallel-task -----------------------------------------

/// A `[&]`-default-capturing lambda handed to the parallel primitives
/// (util::parallel_map / util::parallel_for / ThreadPool::submit /
/// TaskGraph::add_node), matched across line breaks. Blanket by-reference capture is how unordered
/// side effects sneak into sweep tasks: nothing in the capture list says
/// which state the task mutates, so review and TSan triage cannot audit
/// it. Tasks must capture explicitly; deliberate [&] uses (barrier-synced
/// worker lanes that provably drain before scope exit) carry per-line
/// waivers saying why. Also catches the two-step form where the lambda is
/// first bound to a name (`auto job = [&](...)`) and the name is passed.
class RefCaptureRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const override {
    return "ref-capture-in-parallel-task";
  }
  [[nodiscard]] std::string_view description() const override {
    return "[&]-default-capturing lambda (or a name bound to one) passed "
           "to parallel_map / parallel_for / ThreadPool::submit / "
           "TaskGraph::add_node (capture explicitly so task state is "
           "auditable)";
  }

  void check(const SourceFile& file, std::vector<Violation>& out) const override {
    if (!starts_with(file.path, "src/") && !starts_with(file.path, "tools/")) {
      return;
    }
    if (starts_with(file.path, "src/util/thread_pool")) {
      return;  // the primitives' own implementation
    }
    const std::string_view flat = file.flat;

    // Pass 1: every `[&]` / `[&,` lambda introducer, plus the names bound
    // directly to one (`name = [&] ...`).
    std::vector<std::size_t> intros;
    std::vector<std::pair<std::string, std::size_t>> bound;  // name, line
    std::size_t pos = 0;
    while ((pos = flat.find('[', pos)) != kNpos) {
      const std::size_t open = pos;
      pos += 1;
      std::size_t j = skip_layout(flat, open + 1);
      if (j >= flat.size() || flat[j] != '&') continue;
      j = skip_layout(flat, j + 1);
      if (j >= flat.size() || (flat[j] != ']' && flat[j] != ',')) continue;
      intros.push_back(open);
      // Binding? Walk back over layout to '=', then collect the name.
      std::size_t b = open;
      while (b > 0 && (flat[b - 1] == ' ' || flat[b - 1] == '\t' ||
                       flat[b - 1] == '\n')) {
        --b;
      }
      if (b == 0 || flat[b - 1] != '=') continue;
      --b;
      while (b > 0 && (flat[b - 1] == ' ' || flat[b - 1] == '\t' ||
                       flat[b - 1] == '\n')) {
        --b;
      }
      std::size_t name_end = b;
      while (b > 0 && is_ident_char(flat[b - 1])) --b;
      if (name_end > b) {
        bound.emplace_back(std::string(flat.substr(b, name_end - b)),
                           line_at_offset(file, open));
      }
    }
    if (intros.empty()) return;

    // Pass 2: the argument span of every parallel-primitive call; flag any
    // default-ref introducer or bound name inside it.
    for (std::string_view fn :
         {"parallel_map", "parallel_for", "submit", "add_node"}) {
      for (const std::size_t call : identifier_positions(flat, fn)) {
        const std::size_t open = skip_layout(flat, call + fn.size());
        if (open >= flat.size() || flat[open] != '(') continue;
        const std::size_t close = matching_close(flat, open, '(', ')');
        if (close == kNpos) continue;
        for (const std::size_t intro : intros) {
          if (intro > open && intro < close) {
            add(out, file, line_at_offset(file, intro), id(),
                "[&] default capture passed to " + std::string(fn) +
                    "(); capture explicitly (or waive with a comment "
                    "proving the pool drains before the captured scope "
                    "dies)");
          }
        }
        const std::string_view args = flat.substr(open + 1, close - open - 1);
        for (const auto& [name, decl_line] : bound) {
          for (const std::size_t hit : identifier_positions(args, name)) {
            add(out, file, line_at_offset(file, open + 1 + hit), id(),
                "'" + name + "' (a [&]-capturing lambda, line " +
                    std::to_string(decl_line) + ") passed to " +
                    std::string(fn) + "(); capture explicitly so task "
                    "state is auditable");
          }
        }
      }
    }
  }
};

}  // namespace

std::string format_violation(const Violation& v) {
  std::ostringstream out;
  out << v.file << ":" << v.line << ": [" << v.rule << "] " << v.message;
  return out.str();
}

bool contains_identifier(std::string_view line, std::string_view ident) {
  std::size_t pos = 0;
  while ((pos = line.find(ident, pos)) != std::string_view::npos) {
    const bool left_ok = pos == 0 || !is_ident_char(line[pos - 1]);
    const std::size_t end = pos + ident.size();
    const bool right_ok = end >= line.size() || !is_ident_char(line[end]);
    if (left_ok && right_ok) return true;
    pos += 1;
  }
  return false;
}

bool contains_call(std::string_view line, std::string_view ident) {
  std::size_t pos = 0;
  while ((pos = line.find(ident, pos)) != std::string_view::npos) {
    const bool left_ok = pos == 0 || !is_ident_char(line[pos - 1]);
    std::size_t end = pos + ident.size();
    if (left_ok && (end >= line.size() || !is_ident_char(line[end]))) {
      while (end < line.size() && line[end] == ' ') ++end;
      if (end < line.size() && line[end] == '(') return true;
    }
    pos += 1;
  }
  return false;
}

RuleSet default_rules() {
  RuleSet rules;
  rules.push_back(std::make_unique<AssertMacroRule>());
  rules.push_back(std::make_unique<BannedRandomRule>());
  rules.push_back(std::make_unique<CoutInLibraryRule>());
  rules.push_back(std::make_unique<NonatomicOutputWriteRule>());
  rules.push_back(std::make_unique<RawAlignedAllocRule>());
  rules.push_back(std::make_unique<RawProcessSpawnRule>());
  rules.push_back(std::make_unique<RawThreadRule>());
  rules.push_back(std::make_unique<RawUnitDoubleRule>());
  rules.push_back(std::make_unique<RefCaptureRule>());
  rules.push_back(std::make_unique<RelativeIncludeRule>());
  rules.push_back(std::make_unique<UnorderedIterationRule>());
  rules.push_back(std::make_unique<UnseededXoshiroRule>());
  rules.push_back(std::make_unique<WallClockRule>());
  return rules;
}

RuleSet rules_by_id(const std::vector<std::string>& ids) {
  RuleSet all = default_rules();
  RuleSet picked;
  for (const std::string& wanted : ids) {
    bool found = false;
    for (auto& rule : all) {
      if (rule && rule->id() == wanted) {
        picked.push_back(std::move(rule));
        found = true;
        break;
      }
    }
    if (!found) {
      std::ostringstream valid;
      const char* sep = "";
      for (const RuleInfo& info : rule_catalog()) {
        valid << sep << info.id;
        sep = ", ";
      }
      TGI_REQUIRE(found, "unknown lint rule id '" << wanted
                             << "' (valid ids: " << valid.str() << ")");
    }
  }
  return picked;
}

std::vector<RuleInfo> rule_catalog() {
  std::vector<RuleInfo> catalog;
  for (const auto& rule : default_rules()) {
    catalog.push_back(
        RuleInfo{std::string(rule->id()), std::string(rule->description())});
  }
  catalog.push_back(RuleInfo{
      "include-cycle",
      "cyclic module dependency in the src/ include graph (the module DAG "
      "in DESIGN.md §3 must stay acyclic)"});
  catalog.push_back(RuleInfo{
      "layering-violation",
      "#include crossing the declared module layering spec upward or "
      "sideways (see lint/include_graph.h and DESIGN.md §8)"});
  catalog.push_back(RuleInfo{
      "stale-waiver",
      "a `tgi-lint: allow(...)` marker that no longer suppresses any "
      "violation on its line (delete it; found by --audit-waivers)"});
  catalog.push_back(RuleInfo{
      "unknown-waiver",
      "a `tgi-lint: allow(...)` marker naming a rule id that does not "
      "exist (found by --audit-waivers)"});
  std::sort(catalog.begin(), catalog.end(),
            [](const RuleInfo& a, const RuleInfo& b) { return a.id < b.id; });
  return catalog;
}

namespace {

std::vector<Violation> run_rules_impl(const SourceFile& file,
                                      const RuleSet& rules, bool suppress) {
  std::vector<Violation> found;
  for (const auto& rule : rules) {
    TGI_CHECK(rule != nullptr, "null rule in rule set");
    rule->check(file, found);
  }
  std::vector<Violation> kept;
  kept.reserve(found.size());
  for (Violation& v : found) {
    TGI_CHECK(v.line >= 1 && v.line <= file.raw.size(),
              "rule '" << v.rule << "' reported out-of-range line " << v.line);
    // Markers are read from the comments view: a waiver quoted inside a
    // string literal must never suppress a real violation.
    if (!suppress || !line_is_suppressed(file.comments[v.line - 1], v.rule)) {
      kept.push_back(std::move(v));
    }
  }
  std::sort(kept.begin(), kept.end(),
            [](const Violation& a, const Violation& b) {
              if (a.line != b.line) return a.line < b.line;
              if (a.rule != b.rule) return a.rule < b.rule;
              return a.message < b.message;
            });
  // A cross-line matcher can hit the same construct twice (e.g. a bound
  // lambda named in both the capture list and the body of one call);
  // report each distinct finding once.
  kept.erase(std::unique(kept.begin(), kept.end(),
                         [](const Violation& a, const Violation& b) {
                           return a.line == b.line && a.rule == b.rule &&
                                  a.message == b.message;
                         }),
             kept.end());
  return kept;
}

}  // namespace

std::vector<Violation> run_rules(const SourceFile& file, const RuleSet& rules) {
  return run_rules_impl(file, rules, /*suppress=*/true);
}

std::vector<Violation> run_rules_unsuppressed(const SourceFile& file,
                                              const RuleSet& rules) {
  return run_rules_impl(file, rules, /*suppress=*/false);
}

}  // namespace tgi::lint
