#include "lint/rules.h"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "util/error.h"

namespace tgi::lint {

namespace {

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

/// Lowercase copy, ASCII only (identifier names are ASCII).
std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

void add(std::vector<Violation>& out, const SourceFile& file, std::size_t line,
         std::string_view rule, std::string message) {
  out.push_back(Violation{file.path, line, std::string(rule), std::move(message)});
}

// --- banned-random --------------------------------------------------------

/// Random-number machinery that bypasses the seeded util::Xoshiro256 policy.
/// <random> *distributions* are fine (Xoshiro256 satisfies
/// UniformRandomBitGenerator); engines and entropy sources are not.
class BannedRandomRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const override { return "banned-random"; }
  [[nodiscard]] std::string_view description() const override {
    return "unseeded / non-reproducible randomness outside util/rng "
           "(use seeded util::Xoshiro256)";
  }

  void check(const SourceFile& file, std::vector<Violation>& out) const override {
    if (starts_with(file.path, "src/util/rng")) return;  // the one sanctioned home
    static constexpr std::string_view kBannedCalls[] = {
        "rand", "srand", "rand_r", "drand48", "lrand48", "srand48",
    };
    static constexpr std::string_view kBannedTypes[] = {
        "mt19937",       "mt19937_64",           "minstd_rand",
        "minstd_rand0",  "default_random_engine", "random_device",
        "ranlux24",      "ranlux48",              "knuth_b",
    };
    for (std::size_t i = 0; i < file.code.size(); ++i) {
      const std::string& line = file.code[i];
      for (std::string_view name : kBannedCalls) {
        if (contains_call(line, name)) {
          add(out, file, i + 1, id(),
              std::string(name) +
                  "() is not reproducible; use seeded util::Xoshiro256");
        }
      }
      for (std::string_view name : kBannedTypes) {
        if (contains_identifier(line, name)) {
          add(out, file, i + 1, id(),
              "std::" + std::string(name) +
                  " bypasses the seeded-RNG policy; use util::Xoshiro256");
        }
      }
    }
  }
};

// --- raw-unit-double ------------------------------------------------------

/// `double watts` style parameters/members in public library headers.
/// Physical quantities crossing module boundaries must use the strong types
/// in util/units.h (units::Watts, units::Joules, units::Seconds, ...).
class RawUnitDoubleRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const override { return "raw-unit-double"; }
  [[nodiscard]] std::string_view description() const override {
    return "raw double with a unit-suspicious name in a library header "
           "(use util/units.h strong types)";
  }

  void check(const SourceFile& file, std::vector<Violation>& out) const override {
    if (file.kind != FileKind::kLibraryHeader) return;
    for (std::size_t i = 0; i < file.code.size(); ++i) {
      scan_line(file, i, out);
    }
  }

 private:
  static bool suspicious_name(std::string_view name) {
    static constexpr std::string_view kUnitFragments[] = {
        "watt", "joule", "second", "energy", "power", "flops",
    };
    // Derived ratios (flops_per_watt, power_ratio, efficiency values) are
    // dimensionless-by-convention and legitimately raw doubles; only bare
    // quantities must be strong-typed.
    static constexpr std::string_view kRatioMarkers[] = {
        "per_", "_per", "ratio", "efficiency", "factor", "fraction",
    };
    const std::string lower = to_lower(name);
    for (std::string_view marker : kRatioMarkers) {
      if (lower.find(marker) != std::string::npos) return false;
    }
    for (std::string_view fragment : kUnitFragments) {
      if (lower.find(fragment) != std::string::npos) return true;
    }
    return false;
  }

  void scan_line(const SourceFile& file, std::size_t index,
                 std::vector<Violation>& out) const {
    const std::string& line = file.code[index];
    std::size_t pos = 0;
    while ((pos = line.find("double", pos)) != std::string::npos) {
      const std::size_t start = pos;
      pos += 6;  // length of "double"
      // Whole-identifier check for the keyword itself.
      if (start > 0 && is_ident_char(line[start - 1])) continue;
      if (pos < line.size() && is_ident_char(line[pos])) continue;
      // Skip whitespace, then collect the declared name, if any.
      std::size_t j = pos;
      while (j < line.size() && line[j] == ' ') ++j;
      std::size_t name_end = j;
      while (name_end < line.size() && is_ident_char(line[name_end])) {
        ++name_end;
      }
      if (name_end == j) continue;  // `double)` / `double>` / end of line
      // `double foo(` is a function returning double (conversion helpers
      // like in_megaflops), not a stored quantity — skip it.
      std::size_t after = name_end;
      while (after < line.size() && line[after] == ' ') ++after;
      if (after < line.size() && line[after] == '(') continue;
      const std::string_view name =
          std::string_view(line).substr(j, name_end - j);
      if (suspicious_name(name)) {
        add(out, file, index + 1, id(),
            "'double " + std::string(name) +
                "' in a public header; pass util/units.h strong types "
                "across module boundaries");
      }
    }
  }
};

// --- raw-thread -----------------------------------------------------------

/// std::thread / std::jthread / std::async outside util/thread_pool.
/// Ad-hoc threads fragment the determinism story (unordered side effects)
/// and TSan coverage; concurrency flows through util::ThreadPool.
class RawThreadRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const override { return "raw-thread"; }
  [[nodiscard]] std::string_view description() const override {
    return "raw std::thread / std::jthread / std::async outside "
           "util/thread_pool (route concurrency through util::ThreadPool)";
  }

  void check(const SourceFile& file, std::vector<Violation>& out) const override {
    // The one sanctioned home for raw threads.
    if (starts_with(file.path, "src/util/thread_pool")) return;
    static constexpr std::string_view kBanned[] = {"thread", "jthread",
                                                   "async"};
    for (std::size_t i = 0; i < file.code.size(); ++i) {
      const std::string& line = file.code[i];
      for (std::string_view name : kBanned) {
        if (mentions_std(line, name)) {
          add(out, file, i + 1, id(),
              "std::" + std::string(name) +
                  " outside util/thread_pool; use util::ThreadPool so "
                  "sweeps stay deterministic and TSan stays meaningful");
        }
      }
    }
  }

 private:
  /// True if `line` contains `std::<name>` with whole-identifier
  /// boundaries on both `std` and `<name>` (so std::this_thread and
  /// my_thread never match).
  static bool mentions_std(std::string_view line, std::string_view name) {
    const std::string needle = "std::" + std::string(name);
    std::size_t pos = 0;
    while ((pos = line.find(needle, pos)) != std::string_view::npos) {
      const bool left_ok = pos == 0 || !is_ident_char(line[pos - 1]);
      const std::size_t end = pos + needle.size();
      const bool right_ok = end >= line.size() || !is_ident_char(line[end]);
      if (left_ok && right_ok) return true;
      pos += 1;
    }
    return false;
  }
};

// --- relative-include -----------------------------------------------------

/// `#include "../foo.h"` — include paths must be repo-relative from src/.
class RelativeIncludeRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const override {
    return "relative-include";
  }
  [[nodiscard]] std::string_view description() const override {
    return "relative #include path (includes are repo-relative from src/)";
  }

  void check(const SourceFile& file, std::vector<Violation>& out) const override {
    for (std::size_t i = 0; i < file.raw.size(); ++i) {
      const std::string& line = file.raw[i];
      std::size_t pos = line.find('#');
      if (pos == std::string::npos) continue;
      // Only leading whitespace may precede the '#'.
      if (line.find_first_not_of(" \t") != pos) continue;
      std::size_t kw = line.find_first_not_of(" \t", pos + 1);
      if (kw == std::string::npos || line.compare(kw, 7, "include") != 0) {
        continue;
      }
      const std::size_t quote = line.find('"', kw + 7);
      if (quote == std::string::npos) continue;
      const std::string_view target = std::string_view(line).substr(quote + 1);
      if (starts_with(target, "../") || starts_with(target, "./")) {
        add(out, file, i + 1, id(),
            "relative include; write it repo-relative from src/ "
            "(e.g. #include \"core/tgi.h\")");
      }
    }
  }
};

// --- assert-macro ---------------------------------------------------------

/// Bare assert() in library code. assert vanishes under NDEBUG and aborts
/// instead of throwing; library invariants use TGI_REQUIRE / TGI_CHECK.
class AssertMacroRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const override { return "assert-macro"; }
  [[nodiscard]] std::string_view description() const override {
    return "assert() in library code (use TGI_REQUIRE / TGI_CHECK)";
  }

  void check(const SourceFile& file, std::vector<Violation>& out) const override {
    if (!is_library(file.kind)) return;
    for (std::size_t i = 0; i < file.code.size(); ++i) {
      // contains_call's whole-identifier check already rejects
      // static_assert, so one probe suffices.
      if (contains_call(file.code[i], "assert")) {
        add(out, file, i + 1, id(),
            "assert() aborts and vanishes under NDEBUG; use TGI_REQUIRE "
            "(caller bug) or TGI_CHECK (internal bug)");
      }
    }
  }
};

// --- cout-in-library ------------------------------------------------------

/// Direct stdout/stderr writes from static-library modules. Libraries
/// return values and log through util/log; only executables print.
class CoutInLibraryRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const override {
    return "cout-in-library";
  }
  [[nodiscard]] std::string_view description() const override {
    return "stdout/stderr writes in a static-library module (go through "
           "util/log)";
  }

  void check(const SourceFile& file, std::vector<Violation>& out) const override {
    if (!is_library(file.kind)) return;
    if (starts_with(file.path, "src/util/log")) return;  // the sink itself
    static constexpr std::string_view kStreams[] = {"cout", "cerr"};
    static constexpr std::string_view kCalls[] = {"printf", "fprintf", "puts"};
    for (std::size_t i = 0; i < file.code.size(); ++i) {
      const std::string& line = file.code[i];
      for (std::string_view name : kStreams) {
        if (contains_identifier(line, name)) {
          add(out, file, i + 1, id(),
              "std::" + std::string(name) +
                  " in library code; use TGI_LOG_* or return the data");
        }
      }
      for (std::string_view name : kCalls) {
        if (contains_call(line, name)) {
          add(out, file, i + 1, id(),
              std::string(name) +
                  "() in library code; use TGI_LOG_* or return the data");
        }
      }
    }
  }
};

// --- nonatomic-output-write -----------------------------------------------

/// Direct std::ofstream use in the output-emitting layers (src/harness,
/// src/obs, tools). A bare ofstream that dies mid-write (crash, SIGKILL,
/// ENOSPC) leaves a truncated file where a good one may have stood;
/// results, traces, and figure CSVs must go through util::AtomicFile /
/// util::atomic_write_file (write-to-temp + rename, DESIGN.md §11).
/// Deliberate append-mode writers (the checkpoint journal, which replaces
/// rename atomicity with per-record checksums) carry a per-line waiver.
class NonatomicOutputWriteRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const override {
    return "nonatomic-output-write";
  }
  [[nodiscard]] std::string_view description() const override {
    return "direct std::ofstream in src/harness, src/obs, or tools "
           "(publish files through util::AtomicFile)";
  }

  void check(const SourceFile& file, std::vector<Violation>& out) const override {
    if (!starts_with(file.path, "src/harness/") &&
        !starts_with(file.path, "src/obs/") &&
        !starts_with(file.path, "tools/")) {
      return;
    }
    for (std::size_t i = 0; i < file.code.size(); ++i) {
      if (contains_identifier(file.code[i], "ofstream")) {
        add(out, file, i + 1, id(),
            "std::ofstream writes are not crash-safe; publish through "
            "util::AtomicFile (or waive a deliberate append-mode journal)");
      }
    }
  }
};

// --- unseeded-xoshiro -----------------------------------------------------

/// Default-constructed util::Xoshiro256. The defaulted seed parameter
/// makes `Xoshiro256 rng;` compile, but every such generator shares one
/// stream — a silent correlation bug in anything statistical, and a
/// determinism hazard for the fault plane, whose contract is that each
/// decision derives a fresh generator from (seed, indices).
class UnseededXoshiroRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const override {
    return "unseeded-xoshiro";
  }
  [[nodiscard]] std::string_view description() const override {
    return "default-constructed util::Xoshiro256 (pass an explicit seed "
           "expression)";
  }

  void check(const SourceFile& file, std::vector<Violation>& out) const override {
    // The class itself (and its default-seed constant) lives here.
    if (starts_with(file.path, "src/util/rng")) return;
    for (std::size_t i = 0; i < file.code.size(); ++i) {
      if (default_constructs(file.code[i])) {
        add(out, file, i + 1, id(),
            "default-constructed Xoshiro256 reuses the shared default "
            "seed; pass an explicit seed expression");
      }
    }
  }

 private:
  /// True if `line` declares a Xoshiro256 without constructor arguments:
  /// `Xoshiro256 rng;` / `Xoshiro256 rng_{};` / `= Xoshiro256{};` /
  /// `Xoshiro256()`. Non-empty argument lists, parameters
  /// (`Xoshiro256 rng,` / `Xoshiro256& rng`), and return types are left
  /// alone.
  static bool default_constructs(std::string_view line) {
    std::size_t pos = 0;
    static constexpr std::string_view kType = "Xoshiro256";
    while ((pos = line.find(kType, pos)) != std::string_view::npos) {
      const std::size_t start = pos;
      pos += kType.size();
      if (start > 0 && is_ident_char(line[start - 1])) continue;
      if (pos < line.size() && is_ident_char(line[pos])) continue;
      // Optional declared name (absent for temporaries like Xoshiro256{}).
      const std::size_t name_begin = skip_spaces(line, pos);
      std::size_t name_end = name_begin;
      while (name_end < line.size() && is_ident_char(line[name_end])) {
        ++name_end;
      }
      const bool named = name_end > name_begin;
      const std::size_t j = skip_spaces(line, name_end);
      if (j >= line.size()) continue;
      // `Xoshiro256 rng;` — a named declaration ending the statement.
      if (named && line[j] == ';') return true;
      // Empty brace-init on a declaration or a temporary, and the
      // argument-less temporary `Xoshiro256()`. A *named* `rng()` is a
      // function declaration (most vexing parse), not a generator.
      if (line[j] == '{' || (!named && line[j] == '(')) {
        const char close = line[j] == '{' ? '}' : ')';
        const std::size_t k = skip_spaces(line, j + 1);
        if (k < line.size() && line[k] == close) return true;
      }
    }
    return false;
  }

  static std::size_t skip_spaces(std::string_view line, std::size_t j) {
    while (j < line.size() && line[j] == ' ') ++j;
    return j;
  }
};

}  // namespace

std::string format_violation(const Violation& v) {
  std::ostringstream out;
  out << v.file << ":" << v.line << ": [" << v.rule << "] " << v.message;
  return out.str();
}

bool contains_identifier(std::string_view line, std::string_view ident) {
  std::size_t pos = 0;
  while ((pos = line.find(ident, pos)) != std::string_view::npos) {
    const bool left_ok = pos == 0 || !is_ident_char(line[pos - 1]);
    const std::size_t end = pos + ident.size();
    const bool right_ok = end >= line.size() || !is_ident_char(line[end]);
    if (left_ok && right_ok) return true;
    pos += 1;
  }
  return false;
}

bool contains_call(std::string_view line, std::string_view ident) {
  std::size_t pos = 0;
  while ((pos = line.find(ident, pos)) != std::string_view::npos) {
    const bool left_ok = pos == 0 || !is_ident_char(line[pos - 1]);
    std::size_t end = pos + ident.size();
    if (left_ok && (end >= line.size() || !is_ident_char(line[end]))) {
      while (end < line.size() && line[end] == ' ') ++end;
      if (end < line.size() && line[end] == '(') return true;
    }
    pos += 1;
  }
  return false;
}

RuleSet default_rules() {
  RuleSet rules;
  rules.push_back(std::make_unique<AssertMacroRule>());
  rules.push_back(std::make_unique<BannedRandomRule>());
  rules.push_back(std::make_unique<CoutInLibraryRule>());
  rules.push_back(std::make_unique<NonatomicOutputWriteRule>());
  rules.push_back(std::make_unique<RawThreadRule>());
  rules.push_back(std::make_unique<RawUnitDoubleRule>());
  rules.push_back(std::make_unique<RelativeIncludeRule>());
  rules.push_back(std::make_unique<UnseededXoshiroRule>());
  return rules;
}

RuleSet rules_by_id(const std::vector<std::string>& ids) {
  RuleSet all = default_rules();
  RuleSet picked;
  for (const std::string& wanted : ids) {
    bool found = false;
    for (auto& rule : all) {
      if (rule && rule->id() == wanted) {
        picked.push_back(std::move(rule));
        found = true;
        break;
      }
    }
    TGI_REQUIRE(found, "unknown lint rule id '" << wanted << "'");
  }
  return picked;
}

std::vector<Violation> run_rules(const SourceFile& file, const RuleSet& rules) {
  std::vector<Violation> found;
  for (const auto& rule : rules) {
    TGI_CHECK(rule != nullptr, "null rule in rule set");
    rule->check(file, found);
  }
  std::vector<Violation> kept;
  kept.reserve(found.size());
  for (Violation& v : found) {
    TGI_CHECK(v.line >= 1 && v.line <= file.raw.size(),
              "rule '" << v.rule << "' reported out-of-range line " << v.line);
    if (!line_is_suppressed(file.raw[v.line - 1], v.rule)) {
      kept.push_back(std::move(v));
    }
  }
  std::sort(kept.begin(), kept.end(),
            [](const Violation& a, const Violation& b) {
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return kept;
}

}  // namespace tgi::lint
