#include "lint/report.h"

#include <sstream>

#include "util/error.h"

namespace tgi::lint {

Selection default_selection() {
  Selection selection;
  selection.file_rules = default_rules();
  return selection;
}

Selection selection_by_id(const std::vector<std::string>& ids) {
  Selection selection;
  selection.layering = false;
  selection.cycles = false;
  std::vector<std::string> file_ids;
  for (const std::string& id : ids) {
    if (id == "layering-violation") {
      selection.layering = true;
    } else if (id == "include-cycle") {
      selection.cycles = true;
    } else if (id == "stale-waiver" || id == "unknown-waiver") {
      TGI_REQUIRE(false, "'" << id
                             << "' is an --audit-waivers finding, not a "
                                "selectable rule; run with audit_waivers=1");
    } else {
      file_ids.push_back(id);
    }
  }
  selection.file_rules = rules_by_id(file_ids);  // throws on unknown ids
  return selection;
}

std::string render_text(const ScanReport& report) {
  std::ostringstream out;
  for (const Violation& violation : report.violations) {
    out << format_violation(violation) << "\n";
  }
  out << "tgi-lint: " << report.files_scanned << " files, "
      << report.violations.size() << " violation"
      << (report.violations.size() == 1 ? "" : "s") << "\n";
  return out.str();
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(static_cast<unsigned char>(c) >> 4) & 0xF];
          out += kHex[static_cast<unsigned char>(c) & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string render_json(const ScanReport& report) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"tool\": \"tgi-lint\",\n";
  out << "  \"files_scanned\": " << report.files_scanned << ",\n";
  out << "  \"clean\": " << (report.clean() ? "true" : "false") << ",\n";
  out << "  \"violations\": [";
  const char* sep = "\n";
  for (const Violation& v : report.violations) {
    out << sep << "    {\"file\": \"" << json_escape(v.file)
        << "\", \"line\": " << v.line << ", \"rule\": \"" << json_escape(v.rule)
        << "\", \"message\": \"" << json_escape(v.message) << "\"}";
    sep = ",\n";
  }
  if (!report.violations.empty()) out << "\n  ";
  out << "]\n";
  out << "}\n";
  return out.str();
}

}  // namespace tgi::lint
