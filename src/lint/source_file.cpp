#include "lint/source_file.h"

#include "util/error.h"

namespace tgi::lint {

namespace {

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

bool has_extension(std::string_view path, std::string_view ext) {
  return path.size() >= ext.size() &&
         path.substr(path.size() - ext.size()) == ext;
}

}  // namespace

const char* file_kind_name(FileKind kind) {
  switch (kind) {
    case FileKind::kLibraryHeader:
      return "library-header";
    case FileKind::kLibrarySource:
      return "library-source";
    case FileKind::kToolSource:
      return "tool";
    case FileKind::kBenchSource:
      return "bench";
    case FileKind::kExampleSource:
      return "example";
    case FileKind::kTestSource:
      return "test";
    case FileKind::kOther:
      return "other";
  }
  return "other";
}

FileKind classify_path(std::string_view path) {
  if (starts_with(path, "src/")) {
    if (has_extension(path, ".h") || has_extension(path, ".hpp")) {
      return FileKind::kLibraryHeader;
    }
    return FileKind::kLibrarySource;
  }
  if (starts_with(path, "tools/")) return FileKind::kToolSource;
  if (starts_with(path, "bench/")) return FileKind::kBenchSource;
  if (starts_with(path, "examples/")) return FileKind::kExampleSource;
  if (starts_with(path, "tests/")) return FileKind::kTestSource;
  return FileKind::kOther;
}

std::vector<std::string> strip_comments_and_strings(std::string_view text) {
  // Single forward pass with a small state machine. Stripped characters are
  // replaced by spaces so every surviving token keeps its line and column.
  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
  };

  std::vector<std::string> lines;
  std::string current;
  State state = State::kCode;
  std::string raw_delim;  // delimiter of an active R"delim( ... )delim"

  const std::size_t n = text.size();
  for (std::size_t i = 0; i < n; ++i) {
    const char c = text[i];
    const char next = (i + 1 < n) ? text[i + 1] : '\0';

    if (c == '\n') {
      // Newlines always advance the line; a line comment ends here.
      if (state == State::kLineComment) state = State::kCode;
      lines.push_back(current);
      current.clear();
      continue;
    }

    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          current += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          current += "  ";
          ++i;
        } else if (c == 'R' && next == '"') {
          // Possible raw string literal: R"delim( ... )delim". Collect the
          // delimiter up to the opening '('.
          std::size_t j = i + 2;
          std::string delim;
          while (j < n && text[j] != '(' && text[j] != '"' &&
                 text[j] != '\n' && delim.size() < 16) {
            delim += text[j];
            ++j;
          }
          if (j < n && text[j] == '(') {
            state = State::kRawString;
            raw_delim = delim;
            current.append(j - i + 1, ' ');
            i = j;
          } else {
            current += c;  // not actually a raw string prefix
          }
        } else if (c == '"') {
          state = State::kString;
          current += ' ';
        } else if (c == '\'') {
          state = State::kChar;
          current += ' ';
        } else {
          current += c;
        }
        break;

      case State::kLineComment:
        current += ' ';
        break;

      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          current += "  ";
          ++i;
        } else {
          current += ' ';
        }
        break;

      case State::kString:
        if (c == '\\') {
          current += "  ";
          ++i;
        } else if (c == '"') {
          state = State::kCode;
          current += ' ';
        } else {
          current += ' ';
        }
        break;

      case State::kChar:
        if (c == '\\') {
          current += "  ";
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          current += ' ';
        } else {
          current += ' ';
        }
        break;

      case State::kRawString: {
        // Terminator is )delim" — check for it starting at i.
        const std::string terminator = ")" + raw_delim + "\"";
        if (text.substr(i, terminator.size()) == terminator) {
          current.append(terminator.size(), ' ');
          i += terminator.size() - 1;
          state = State::kCode;
        } else {
          current += ' ';
        }
        break;
      }
    }
  }
  lines.push_back(current);
  return lines;
}

SourceFile make_source_file(std::string path, std::string_view content) {
  TGI_REQUIRE(!path.empty(), "source file path must not be empty");
  SourceFile file;
  file.kind = classify_path(path);
  file.path = std::move(path);
  file.code = strip_comments_and_strings(content);
  file.raw.reserve(file.code.size());
  std::size_t start = 0;
  for (std::size_t i = 0; i <= content.size(); ++i) {
    if (i == content.size() || content[i] == '\n') {
      file.raw.emplace_back(content.substr(start, i - start));
      start = i + 1;
    }
  }
  TGI_CHECK(file.raw.size() == file.code.size(),
            "raw/code line counts diverged: " << file.raw.size() << " vs "
                                              << file.code.size());
  return file;
}

bool line_is_suppressed(std::string_view raw_line, std::string_view rule_id) {
  const std::string marker = "tgi-lint: allow(" + std::string(rule_id) + ")";
  return raw_line.find(marker) != std::string_view::npos;
}

}  // namespace tgi::lint
