#include "lint/source_file.h"

#include <algorithm>

#include "util/error.h"

namespace tgi::lint {

namespace {

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

bool has_extension(std::string_view path, std::string_view ext) {
  return path.size() >= ext.size() &&
         path.substr(path.size() - ext.size()) == ext;
}

}  // namespace

const char* file_kind_name(FileKind kind) {
  switch (kind) {
    case FileKind::kLibraryHeader:
      return "library-header";
    case FileKind::kLibrarySource:
      return "library-source";
    case FileKind::kToolSource:
      return "tool";
    case FileKind::kBenchSource:
      return "bench";
    case FileKind::kExampleSource:
      return "example";
    case FileKind::kTestSource:
      return "test";
    case FileKind::kOther:
      return "other";
  }
  return "other";
}

FileKind classify_path(std::string_view path) {
  if (starts_with(path, "src/")) {
    if (has_extension(path, ".h") || has_extension(path, ".hpp")) {
      return FileKind::kLibraryHeader;
    }
    return FileKind::kLibrarySource;
  }
  if (starts_with(path, "tools/")) return FileKind::kToolSource;
  if (starts_with(path, "bench/")) return FileKind::kBenchSource;
  if (starts_with(path, "examples/")) return FileKind::kExampleSource;
  if (starts_with(path, "tests/")) return FileKind::kTestSource;
  return FileKind::kOther;
}

namespace {

/// Both stripped shadows, computed in one pass so they stay aligned.
struct StrippedViews {
  std::vector<std::string> code;      // comments + literals blanked
  std::vector<std::string> comments;  // only comment interiors survive
};

StrippedViews strip_views(std::string_view text) {
  // Single forward pass with a small state machine. Stripped characters are
  // replaced by spaces so every surviving token keeps its line and column.
  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
  };

  StrippedViews views;
  std::string code_line;
  std::string comment_line;
  State state = State::kCode;
  std::string raw_delim;  // delimiter of an active R"delim( ... )delim"

  // Emits `count` characters: `c` into the code view and a space into the
  // comment view (or the reverse when `to_comment` is set).
  const auto put = [&](char c, bool to_comment = false) {
    code_line += to_comment ? ' ' : c;
    comment_line += to_comment ? c : ' ';
  };
  const auto put_blank = [&](std::size_t count) {
    code_line.append(count, ' ');
    comment_line.append(count, ' ');
  };

  const std::size_t n = text.size();
  for (std::size_t i = 0; i < n; ++i) {
    const char c = text[i];
    const char next = (i + 1 < n) ? text[i + 1] : '\0';

    if (c == '\n') {
      // Newlines always advance the line; a line comment ends here.
      if (state == State::kLineComment) state = State::kCode;
      views.code.push_back(code_line);
      views.comments.push_back(comment_line);
      code_line.clear();
      comment_line.clear();
      continue;
    }

    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          put_blank(2);
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          put_blank(2);
          ++i;
        } else if (c == 'R' && next == '"') {
          // Possible raw string literal: R"delim( ... )delim". Collect the
          // delimiter up to the opening '('.
          std::size_t j = i + 2;
          std::string delim;
          while (j < n && text[j] != '(' && text[j] != '"' &&
                 text[j] != '\n' && delim.size() < 16) {
            delim += text[j];
            ++j;
          }
          if (j < n && text[j] == '(') {
            state = State::kRawString;
            raw_delim = delim;
            put_blank(j - i + 1);
            i = j;
          } else {
            put(c);  // not actually a raw string prefix
          }
        } else if (c == '"') {
          state = State::kString;
          put_blank(1);
        } else if (c == '\'') {
          state = State::kChar;
          put_blank(1);
        } else {
          put(c);
        }
        break;

      case State::kLineComment:
        put(c, /*to_comment=*/true);
        break;

      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          put_blank(2);
          ++i;
        } else {
          put(c, /*to_comment=*/true);
        }
        break;

      case State::kString:
        if (c == '\\') {
          put_blank(2);
          ++i;
        } else if (c == '"') {
          state = State::kCode;
          put_blank(1);
        } else {
          put_blank(1);
        }
        break;

      case State::kChar:
        if (c == '\\') {
          put_blank(2);
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          put_blank(1);
        } else {
          put_blank(1);
        }
        break;

      case State::kRawString: {
        // Terminator is )delim" — check for it starting at i.
        const std::string terminator = ")" + raw_delim + "\"";
        if (text.substr(i, terminator.size()) == terminator) {
          put_blank(terminator.size());
          i += terminator.size() - 1;
          state = State::kCode;
        } else {
          put_blank(1);
        }
        break;
      }
    }
  }
  views.code.push_back(code_line);
  views.comments.push_back(comment_line);
  return views;
}

}  // namespace

std::vector<std::string> strip_comments_and_strings(std::string_view text) {
  return strip_views(text).code;
}

std::vector<std::string> comment_lines(std::string_view text) {
  return strip_views(text).comments;
}

SourceFile make_source_file(std::string path, std::string_view content) {
  TGI_REQUIRE(!path.empty(), "source file path must not be empty");
  SourceFile file;
  file.kind = classify_path(path);
  file.path = std::move(path);
  StrippedViews views = strip_views(content);
  file.code = std::move(views.code);
  file.comments = std::move(views.comments);
  file.raw.reserve(file.code.size());
  std::size_t start = 0;
  for (std::size_t i = 0; i <= content.size(); ++i) {
    if (i == content.size() || content[i] == '\n') {
      file.raw.emplace_back(content.substr(start, i - start));
      start = i + 1;
    }
  }
  TGI_CHECK(file.raw.size() == file.code.size(),
            "raw/code line counts diverged: " << file.raw.size() << " vs "
                                              << file.code.size());
  file.line_starts.reserve(file.code.size());
  for (const std::string& line : file.code) {
    file.line_starts.push_back(file.flat.size());
    file.flat += line;
    file.flat += '\n';
  }
  if (!file.flat.empty()) file.flat.pop_back();  // no trailing separator
  return file;
}

std::size_t line_at_offset(const SourceFile& file, std::size_t offset) {
  TGI_CHECK(!file.line_starts.empty(), "SourceFile has no lines");
  const auto it = std::upper_bound(file.line_starts.begin(),
                                  file.line_starts.end(), offset);
  return static_cast<std::size_t>(it - file.line_starts.begin());
}

bool line_is_suppressed(std::string_view line, std::string_view rule_id) {
  const std::string marker = "tgi-lint: allow(" + std::string(rule_id) + ")";
  return line.find(marker) != std::string_view::npos;
}

std::vector<WaiverMarker> collect_waivers(const SourceFile& file) {
  static constexpr std::string_view kPrefix = "tgi-lint: allow(";
  std::vector<WaiverMarker> found;
  for (std::size_t i = 0; i < file.comments.size(); ++i) {
    const std::string& line = file.comments[i];
    std::size_t pos = 0;
    while ((pos = line.find(kPrefix, pos)) != std::string::npos) {
      std::size_t j = pos + kPrefix.size();
      std::string id;
      while (j < line.size() &&
             ((line[j] >= 'a' && line[j] <= 'z') ||
              (line[j] >= '0' && line[j] <= '9') || line[j] == '-')) {
        id += line[j];
        ++j;
      }
      if (!id.empty() && j < line.size() && line[j] == ')') {
        found.push_back(WaiverMarker{i + 1, std::move(id)});
      }
      pos += kPrefix.size();
    }
  }
  return found;
}

}  // namespace tgi::lint
