// Lexical model of one repository source file as seen by tgi-lint.
//
// tgi-lint is deliberately a *lexical* analyzer, not a parser: the
// conventions it enforces (banned identifiers, raw unit doubles in public
// signatures, include hygiene) are all visible at the token level, and a
// lexical pass keeps the tool dependency-free and fast enough to run as an
// ordinary CTest test. The one piece of real lexing we do is comment and
// string-literal stripping, so that rule matchers never fire on prose or on
// quoted example code.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace tgi::lint {

/// Where a file lives in the repo layout; rules apply selectively by kind.
/// Library code (src/) is held to stricter rules than executables: tools,
/// benches and examples are allowed to print to stdout, tests are allowed
/// to use gtest's machinery, but *nobody* gets unseeded randomness.
enum class FileKind {
  kLibraryHeader,  // src/**/*.h
  kLibrarySource,  // src/**/*.cpp
  kToolSource,     // tools/**
  kBenchSource,    // bench/**
  kExampleSource,  // examples/**
  kTestSource,     // tests/**
  kOther,          // anything else handed to the scanner
};

/// Human-readable name of a FileKind ("library-header", ...).
const char* file_kind_name(FileKind kind);

/// Classifies a repo-relative, '/'-separated path into a FileKind.
FileKind classify_path(std::string_view repo_relative_path);

/// True for library code (headers or sources under src/).
[[nodiscard]] constexpr bool is_library(FileKind kind) {
  return kind == FileKind::kLibraryHeader || kind == FileKind::kLibrarySource;
}

/// One source file split into lines, with a comment/string-stripped shadow
/// copy for token-level matching.
struct SourceFile {
  std::string path;  // repo-relative, '/'-separated
  FileKind kind = FileKind::kOther;
  std::vector<std::string> raw;   // lines as written (for include rules,
                                  // suppression markers, diagnostics)
  std::vector<std::string> code;  // same lines with comments and string /
                                  // character literals blanked to spaces
};

/// Builds a SourceFile from in-memory content: splits lines, classifies the
/// path, and computes the stripped shadow. This is the seam the unit tests
/// use — no filesystem involved.
SourceFile make_source_file(std::string path, std::string_view content);

/// Blanks comments (//, /*...*/) and string/char literals (including
/// R"(...)" raw strings) to spaces, preserving line structure and column
/// positions. Exposed for direct testing.
std::vector<std::string> strip_comments_and_strings(std::string_view content);

/// True when the raw line carries a `tgi-lint: allow(<rule-id>)` marker for
/// the given rule, which suppresses violations reported on that line.
bool line_is_suppressed(std::string_view raw_line, std::string_view rule_id);

}  // namespace tgi::lint
