// Lexical model of one repository source file as seen by tgi-lint.
//
// tgi-lint is deliberately a *lexical* analyzer, not a parser: the
// conventions it enforces (banned identifiers, raw unit doubles in public
// signatures, include hygiene) are all visible at the token level, and a
// lexical pass keeps the tool dependency-free and fast enough to run as an
// ordinary CTest test. The one piece of real lexing we do is comment and
// string-literal stripping, so that rule matchers never fire on prose or on
// quoted example code.
//
// Three aligned views of every file are kept:
//   raw      — the bytes as written (include parsing, diagnostics);
//   code     — comments and string/char literals blanked to spaces
//              (token matching), also joined into `flat`, the cross-line
//              token stream the multi-line determinism rules scan;
//   comments — ONLY comment interiors survive (everything else blanked).
//              Suppression markers and the waiver audit read this view, so
//              a `tgi-lint: allow(...)` quoted inside a string literal is
//              never mistaken for a real waiver.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace tgi::lint {

/// Where a file lives in the repo layout; rules apply selectively by kind.
/// Library code (src/) is held to stricter rules than executables: tools,
/// benches and examples are allowed to print to stdout, tests are allowed
/// to use gtest's machinery, but *nobody* gets unseeded randomness.
enum class FileKind {
  kLibraryHeader,  // src/**/*.h
  kLibrarySource,  // src/**/*.cpp
  kToolSource,     // tools/**
  kBenchSource,    // bench/**
  kExampleSource,  // examples/**
  kTestSource,     // tests/**
  kOther,          // anything else handed to the scanner
};

/// Human-readable name of a FileKind ("library-header", ...).
const char* file_kind_name(FileKind kind);

/// Classifies a repo-relative, '/'-separated path into a FileKind.
FileKind classify_path(std::string_view repo_relative_path);

/// True for library code (headers or sources under src/).
[[nodiscard]] constexpr bool is_library(FileKind kind) {
  return kind == FileKind::kLibraryHeader || kind == FileKind::kLibrarySource;
}

/// One source file split into lines, with comment/string-stripped shadow
/// copies for token-level and cross-line matching.
struct SourceFile {
  std::string path;  // repo-relative, '/'-separated
  FileKind kind = FileKind::kOther;
  std::vector<std::string> raw;   // lines as written (for include rules,
                                  // diagnostics)
  std::vector<std::string> code;  // same lines with comments and string /
                                  // character literals blanked to spaces
  std::vector<std::string> comments;  // only comment interiors survive;
                                      // code and literals blanked (waiver
                                      // markers live here)
  std::string flat;  // `code` joined with '\n' — the cross-line token
                     // stream the multi-line determinism rules scan
  std::vector<std::size_t> line_starts;  // flat offset of each line's start
};

/// Builds a SourceFile from in-memory content: splits lines, classifies the
/// path, and computes the stripped shadows. This is the seam the unit tests
/// use — no filesystem involved.
SourceFile make_source_file(std::string path, std::string_view content);

/// Blanks comments (//, /*...*/) and string/char literals (including
/// R"(...)" raw strings) to spaces, preserving line structure and column
/// positions. Exposed for direct testing.
std::vector<std::string> strip_comments_and_strings(std::string_view content);

/// The complementary view: only comment interiors survive; code and
/// string/char literals are blanked to spaces. Line/column aligned with
/// `strip_comments_and_strings`.
std::vector<std::string> comment_lines(std::string_view content);

/// 1-based line number of byte `offset` within `file.flat`. Offsets at or
/// past the end map to the last line.
std::size_t line_at_offset(const SourceFile& file, std::size_t offset);

/// True when the line carries a `tgi-lint: allow(<rule-id>)` marker for
/// the given rule. `run_rules` feeds it the `comments` view, so markers
/// quoted inside string literals never suppress anything.
bool line_is_suppressed(std::string_view line, std::string_view rule_id);

/// One `tgi-lint: allow(<id>)` marker found in a file's comments.
struct WaiverMarker {
  std::size_t line = 0;  // 1-based
  std::string rule_id;
};

/// Every well-formed waiver marker in `file.comments`, in line order.
/// Ids are lowercase [a-z0-9-] words; documentation placeholders like
/// `allow(<rule-id>)` are not markers and are skipped.
std::vector<WaiverMarker> collect_waivers(const SourceFile& file);

}  // namespace tgi::lint
