// Convention rules enforced by tgi-lint.
//
// Each rule is a small matcher object over a SourceFile. The rule set
// machine-checks the invariants documented in CLAUDE.md that the compiler
// cannot see:
//
//   banned-random     std::rand / srand / std::mt19937 / std::random_device
//                     and friends anywhere outside util/rng — all randomness
//                     must flow through seeded util::Xoshiro256 so figures
//                     stay bit-reproducible.
//   raw-thread        std::thread / std::jthread / std::async outside
//                     util/thread_pool — concurrency flows through
//                     util::ThreadPool (mpisim's ranks-as-threads runtime
//                     carries a documented per-line waiver) so parallel
//                     sweeps stay deterministic and TSan coverage of the
//                     tree stays meaningful.
//   raw-process-spawn fork / exec* / waitpid / system / popen /
//                     posix_spawn outside util/subprocess — children are
//                     spawned and supervised through util::Subprocess
//                     (DESIGN.md §15) so every worker has the non-blocking
//                     try_wait()/kill() surface and the escalating
//                     destructor; system()/popen() also launder argv
//                     through an unauditable shell.
//   raw-unit-double   `double`-typed parameters with unit-suspicious names
//                     (watts, joules, seconds, energy, power, flops) in
//                     public library headers — physical quantities crossing
//                     module boundaries must use util/units.h strong types.
//   relative-include  `#include "../..."` — includes are repo-relative
//                     from src/ (`#include "core/tgi.h"`).
//   assert-macro      bare `assert(` in library code — use TGI_REQUIRE for
//                     caller bugs, TGI_CHECK for internal bugs; both throw
//                     and survive NDEBUG builds.
//   cout-in-library   std::cout / std::cerr / printf in static-library
//                     modules — diagnostics go through util/log, and
//                     results are returned, not printed.
//   unseeded-xoshiro  default-constructed util::Xoshiro256 outside util/rng —
//                     the defaulted seed compiles but silently reuses one
//                     shared stream; every generator must be seeded with an
//                     explicit expression (derived from (seed, index) for
//                     per-decision streams, as the fault plane does).
//   nonatomic-output-write  direct std::ofstream in src/harness, src/obs,
//                     or tools — published files (CSVs, traces, figures)
//                     must go through util::AtomicFile so a crash mid-write
//                     can never leave a truncated file; deliberate
//                     append-mode journals carry a per-line waiver.
//
// Cross-line determinism rules (matched on SourceFile::flat, so the
// pattern may span line breaks):
//
//   unordered-iteration-in-output  range-for over a std::unordered_map /
//                     std::unordered_set in src/harness, src/obs, src/core,
//                     or tools — iteration order is unspecified and those
//                     layers feed published artifacts (CSVs, traces,
//                     stdout transcripts), so hash order would leak into
//                     bytes that must be reproducible.
//   wall-clock-in-deterministic-path  system_clock / steady_clock /
//                     high_resolution_clock / time() / clock_gettime()
//                     in src/ or tools outside src/util/thread_pool* and
//                     the quarantined src/obs/profile* channel — results
//                     live on simulated time; real-kernel timing homes
//                     (src/kernels native runs) carry documented per-line
//                     waivers.
//   ref-capture-in-parallel-task  a `[&]`-default-capturing lambda (or a
//                     name bound to one) handed to parallel_map /
//                     parallel_for / ThreadPool::submit /
//                     TaskGraph::add_node in src/ or tools —
//                     blanket by-reference capture makes shared mutable
//                     state invisible to review; capture explicitly, or
//                     waive with a comment proving the pool drains before
//                     the captured scope dies.
//
// A violation on a specific line can be waived with a trailing
// `// tgi-lint: allow(<rule-id>)` marker (the marker must sit in a real
// comment; quoted markers in string literals are inert). `tgi_lint
// --audit-waivers` flags markers that no longer suppress anything.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "lint/source_file.h"

namespace tgi::lint {

/// One convention violation at a specific source location.
struct Violation {
  std::string file;      // repo-relative path
  std::size_t line = 0;  // 1-based
  std::string rule;      // rule id, e.g. "banned-random"
  std::string message;
};

/// `file:line: [rule] message` — the format promised in the README.
std::string format_violation(const Violation& v);

/// Interface for one lint rule. Rules are stateless; `check` appends any
/// violations found in `file` to `out`.
class Rule {
 public:
  virtual ~Rule() = default;
  [[nodiscard]] virtual std::string_view id() const = 0;
  [[nodiscard]] virtual std::string_view description() const = 0;
  virtual void check(const SourceFile& file, std::vector<Violation>& out) const = 0;
};

using RuleSet = std::vector<std::unique_ptr<Rule>>;

/// All per-file rules, in stable id order.
RuleSet default_rules();

/// The subset of `default_rules()` whose ids appear in `ids`.
/// Throws PreconditionError on an unknown id, listing the valid ones.
RuleSet rules_by_id(const std::vector<std::string>& ids);

/// One entry of the full rule catalog (`tgi_lint --list-rules`).
struct RuleInfo {
  std::string id;
  std::string description;
};

/// Every rule id tgi-lint can report, in stable id order: the per-file
/// rules from `default_rules()`, the include-graph pass rules
/// (`include-cycle`, `layering-violation` — see lint/include_graph.h), and
/// the waiver-audit findings (`stale-waiver`, `unknown-waiver`).
std::vector<RuleInfo> rule_catalog();

/// Runs every rule over one file, honoring per-line allow markers; returns
/// violations sorted by (line, rule).
std::vector<Violation> run_rules(const SourceFile& file, const RuleSet& rules);

/// Same, but with allow markers ignored — the waiver audit compares this
/// against the markers to find waivers that no longer suppress anything.
std::vector<Violation> run_rules_unsuppressed(const SourceFile& file,
                                              const RuleSet& rules);

// --- Token-level helpers shared by the matchers (exposed for tests) -------

/// True if `line` contains `ident` as a whole identifier (not as a substring
/// of a longer identifier).
bool contains_identifier(std::string_view line, std::string_view ident);

/// True if `line` contains `ident` as a whole identifier immediately
/// followed by `(` (ignoring spaces) — i.e. a call or macro invocation.
bool contains_call(std::string_view line, std::string_view ident);

}  // namespace tgi::lint
