// Module-level include-graph pass for tgi-lint.
//
// Every `#include "module/file.h"` in src/ is an edge in the module
// dependency graph (includes are repo-relative from src/, so the first
// path segment *is* the module). Two whole-graph rules run over it:
//
//   include-cycle       the module graph must stay a DAG — a cycle means
//                       two modules cannot be built, tested, or reasoned
//                       about independently.
//   layering-violation  edges must also respect the declared layering
//                       spec below: a module may include only modules in
//                       strictly lower layers (or its exact `only` pin).
//
// The spec is checked into the repo (default_layering_spec()) so the
// system map in DESIGN.md §3 is machine-verified, not prose. Format, one
// directive per line ('#' comments allowed):
//
//   layer <module> [<module>...]   — next layer up; earlier lines are lower
//   only <module>: [<dep>...]      — additionally pin <module> to exactly
//                                    this dependency set (subset of the
//                                    lower layers its position allows)
//
// Like every other rule, a specific include line can be waived with a
// trailing allow-marker naming `layering-violation` or `include-cycle`;
// `--audit-waivers` keeps those honest.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "lint/rules.h"
#include "lint/source_file.h"

namespace tgi::lint {

/// One `#include "other_module/..."` occurrence, attributed to the source
/// module of the including file.
struct IncludeEdge {
  std::string from_module;
  std::string to_module;
  std::string file;      // repo-relative path of the including file
  std::size_t line = 0;  // 1-based line of the #include
  bool waived_layering = false;  // line carries allow(layering-violation)
  bool waived_cycle = false;     // line carries allow(include-cycle)
};

/// Module name of a repo-relative path: "src/<module>/..." → "<module>",
/// empty string for anything not under src/ (tools, tests, benches sit on
/// top of the graph and are not layered).
std::string module_of_path(std::string_view repo_relative_path);

/// All module-crossing include edges in one file. Self-edges
/// (intra-module includes) and relative includes are skipped — the
/// `relative-include` per-file rule owns the latter.
std::vector<IncludeEdge> collect_includes(const SourceFile& file);

/// The declared bottom-up module layering, parsed from the spec text.
class LayeringSpec {
 public:
  /// Parses the directive format documented above. Throws PreconditionError
  /// on malformed lines, unknown directives, or duplicate modules.
  static LayeringSpec parse(std::string_view text);

  /// 0-based layer index of `module`; npos for modules not in the spec.
  [[nodiscard]] std::size_t layer_of(std::string_view module) const;

  /// Exact dependency pin from an `only` directive, or nullptr.
  [[nodiscard]] const std::set<std::string>* only_deps(
      std::string_view module) const;

  /// All modules named in the spec, sorted.
  [[nodiscard]] std::vector<std::string> modules() const;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

 private:
  std::map<std::string, std::size_t, std::less<>> layer_;
  std::map<std::string, std::set<std::string>, std::less<>> only_;
};

/// The spec this repository is held to — DESIGN.md §3's dependency order,
/// machine-checkable. Kept in code (not a loose file) so the linter can
/// never run against a missing or drifted spec.
const LayeringSpec& default_layering_spec();

/// Accumulates include edges across a scan and runs the whole-graph rules.
class IncludeGraph {
 public:
  /// Parses and records `file`'s module-crossing includes.
  void add_file(const SourceFile& file);

  /// Records one edge directly (the synthetic-tree unit-test seam).
  void add_edge(IncludeEdge edge);

  /// Every recorded edge, in insertion order.
  [[nodiscard]] const std::vector<IncludeEdge>& edges() const {
    return edges_;
  }

  /// `layering-violation` findings: edges to a module in the same or a
  /// higher layer, to a module missing from the spec, from a module
  /// missing from the spec, or outside an `only` pin. Sorted by
  /// (file, line, message). With `honor_waivers`, edges whose include line
  /// carries allow(layering-violation) are skipped.
  [[nodiscard]] std::vector<Violation> check_layering(
      const LayeringSpec& spec, bool honor_waivers = true) const;

  /// `include-cycle` findings: one violation per distinct module cycle,
  /// anchored at the smallest (file, line) edge on the cycle. Sorted by
  /// (file, line, message). With `honor_waivers`, cycles where *every*
  /// edge is waived are skipped.
  [[nodiscard]] std::vector<Violation> check_cycles(
      bool honor_waivers = true) const;

 private:
  std::vector<IncludeEdge> edges_;
};

}  // namespace tgi::lint
