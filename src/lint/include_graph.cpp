#include "lint/include_graph.h"

#include <algorithm>
#include <functional>
#include <sstream>
#include <utility>

#include "util/error.h"

namespace tgi::lint {

namespace {

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

std::size_t skip_ws(std::string_view s, std::size_t i) {
  while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
  return i;
}

std::vector<std::string> split_tokens(std::string_view line) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    i = skip_ws(line, i);
    std::size_t end = i;
    while (end < line.size() && line[end] != ' ' && line[end] != '\t') ++end;
    if (end > i) tokens.emplace_back(line.substr(i, end - i));
    i = end;
  }
  return tokens;
}

}  // namespace

std::string module_of_path(std::string_view repo_relative_path) {
  if (!starts_with(repo_relative_path, "src/")) return {};
  const std::string_view rest = repo_relative_path.substr(4);
  const std::size_t slash = rest.find('/');
  if (slash == std::string_view::npos) return {};
  return std::string(rest.substr(0, slash));
}

std::vector<IncludeEdge> collect_includes(const SourceFile& file) {
  std::vector<IncludeEdge> found;
  const std::string from = module_of_path(file.path);
  if (from.empty()) return found;  // only src/ modules are layered
  for (std::size_t i = 0; i < file.raw.size(); ++i) {
    const std::string& line = file.raw[i];
    std::size_t j = skip_ws(line, 0);
    if (j >= line.size() || line[j] != '#') continue;
    j = skip_ws(line, j + 1);
    if (line.compare(j, 7, "include") != 0) continue;
    j = skip_ws(line, j + 7);
    if (j >= line.size() || line[j] != '"') continue;  // <system> headers
    const std::size_t close = line.find('"', j + 1);
    if (close == std::string::npos) continue;
    const std::string_view target(line.data() + j + 1, close - j - 1);
    if (starts_with(target, "./") || starts_with(target, "../")) {
      continue;  // the relative-include per-file rule owns these
    }
    const std::size_t slash = target.find('/');
    if (slash == std::string_view::npos) continue;  // no module segment
    std::string to(target.substr(0, slash));
    if (to == from) continue;  // intra-module
    IncludeEdge edge;
    edge.from_module = from;
    edge.to_module = std::move(to);
    edge.file = file.path;
    edge.line = i + 1;
    edge.waived_layering =
        line_is_suppressed(file.comments[i], "layering-violation");
    edge.waived_cycle = line_is_suppressed(file.comments[i], "include-cycle");
    found.push_back(std::move(edge));
  }
  return found;
}

LayeringSpec LayeringSpec::parse(std::string_view text) {
  LayeringSpec spec;
  std::size_t layer_count = 0;
  std::size_t start = 0;
  std::size_t line_no = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = text.substr(start, end - start);
    start = end + 1;
    ++line_no;
    const std::size_t first = skip_ws(line, 0);
    if (first >= line.size() || line[first] == '#') continue;
    std::vector<std::string> tokens = split_tokens(line);
    TGI_REQUIRE(!tokens.empty(), "layering spec: empty directive");
    if (tokens[0] == "layer") {
      TGI_REQUIRE(tokens.size() >= 2, "layering spec line " << line_no
                                          << ": `layer` needs at least one "
                                             "module");
      for (std::size_t t = 1; t < tokens.size(); ++t) {
        const auto [it, inserted] = spec.layer_.emplace(tokens[t], layer_count);
        TGI_REQUIRE(inserted, "layering spec line "
                                  << line_no << ": module '" << tokens[t]
                                  << "' appears in more than one layer");
      }
      ++layer_count;
    } else if (tokens[0] == "only") {
      TGI_REQUIRE(tokens.size() >= 2, "layering spec line " << line_no
                                          << ": `only` needs a module");
      std::string module = tokens[1];
      std::size_t dep_start = 2;
      if (!module.empty() && module.back() == ':') {
        module.pop_back();
      } else {
        TGI_REQUIRE(tokens.size() >= 3 && tokens[2] == ":",
                    "layering spec line " << line_no
                                          << ": `only <module>:` needs a "
                                             "colon");
        dep_start = 3;
      }
      TGI_REQUIRE(spec.layer_.count(module) != 0,
                  "layering spec line " << line_no << ": `only` module '"
                                        << module
                                        << "' is not in any layer");
      const auto [it, inserted] = spec.only_.emplace(
          module, std::set<std::string>(tokens.begin() +
                                            static_cast<std::ptrdiff_t>(
                                                dep_start),
                                        tokens.end()));
      TGI_REQUIRE(inserted, "layering spec line "
                                << line_no << ": duplicate `only` for '"
                                << module << "'");
      for (const std::string& dep : it->second) {
        TGI_REQUIRE(spec.layer_.count(dep) != 0,
                    "layering spec line " << line_no << ": `only` dep '"
                                          << dep << "' is not in any layer");
      }
    } else {
      TGI_REQUIRE(false, "layering spec line " << line_no
                             << ": unknown directive '" << tokens[0]
                             << "' (expected `layer` or `only`)");
    }
  }
  TGI_REQUIRE(layer_count > 0, "layering spec declares no layers");
  return spec;
}

std::size_t LayeringSpec::layer_of(std::string_view module) const {
  const auto it = layer_.find(module);
  return it == layer_.end() ? npos : it->second;
}

const std::set<std::string>* LayeringSpec::only_deps(
    std::string_view module) const {
  const auto it = only_.find(module);
  return it == only_.end() ? nullptr : &it->second;
}

std::vector<std::string> LayeringSpec::modules() const {
  std::vector<std::string> out;
  out.reserve(layer_.size());
  for (const auto& [module, layer] : layer_) out.push_back(module);
  return out;  // std::map iterates sorted
}

const LayeringSpec& default_layering_spec() {
  // DESIGN.md §3's dependency order, bottom-up. `lint` sits at the top of
  // the spec but is pinned to util alone: the analyzer must stay buildable
  // and testable without the model stack it audits.
  static const LayeringSpec spec = LayeringSpec::parse(R"(
# tgi module layering, bottom-up (DESIGN.md §3 / §8).
layer util
layer stats
layer power net fs mpisim obs
layer sim
layer kernels
layer core
layer harness
layer serve
layer lint
only lint: util
)");
  return spec;
}

void IncludeGraph::add_file(const SourceFile& file) {
  for (IncludeEdge& edge : collect_includes(file)) {
    edges_.push_back(std::move(edge));
  }
}

void IncludeGraph::add_edge(IncludeEdge edge) {
  edges_.push_back(std::move(edge));
}

namespace {

void sort_violations(std::vector<Violation>& out) {
  std::sort(out.begin(), out.end(),
            [](const Violation& a, const Violation& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.message < b.message;
            });
}

}  // namespace

std::vector<Violation> IncludeGraph::check_layering(
    const LayeringSpec& spec, bool honor_waivers) const {
  std::vector<Violation> out;
  for (const IncludeEdge& edge : edges_) {
    if (honor_waivers && edge.waived_layering) continue;
    const std::size_t from_layer = spec.layer_of(edge.from_module);
    const std::size_t to_layer = spec.layer_of(edge.to_module);
    std::string message;
    if (from_layer == LayeringSpec::npos) {
      message = "module '" + edge.from_module +
                "' is not declared in the layering spec";
    } else if (to_layer == LayeringSpec::npos) {
      message = "include of '" + edge.to_module +
                "', which is not declared in the layering spec";
    } else if (const std::set<std::string>* pin =
                   spec.only_deps(edge.from_module);
               pin != nullptr && pin->count(edge.to_module) == 0) {
      std::ostringstream allowed;
      const char* sep = "";
      for (const std::string& dep : *pin) {
        allowed << sep << dep;
        sep = ", ";
      }
      message = "module '" + edge.from_module + "' includes '" +
                edge.to_module + "' outside its `only` pin (allowed: " +
                allowed.str() + ")";
    } else if (to_layer >= from_layer) {
      message = "module '" + edge.from_module + "' (layer " +
                std::to_string(from_layer) + ") includes '" + edge.to_module +
                "' (layer " + std::to_string(to_layer) +
                "); modules may include only strictly lower layers";
    }
    if (!message.empty()) {
      out.push_back(Violation{edge.file, edge.line, "layering-violation",
                              std::move(message)});
    }
  }
  sort_violations(out);
  return out;
}

std::vector<Violation> IncludeGraph::check_cycles(bool honor_waivers) const {
  // Module-level adjacency, with every concrete edge kept per module pair
  // so cycle reports can be anchored at a real include line.
  std::map<std::string, std::set<std::string>> adjacency;
  std::map<std::pair<std::string, std::string>, std::vector<const IncludeEdge*>>
      concrete;
  for (const IncludeEdge& edge : edges_) {
    adjacency[edge.from_module].insert(edge.to_module);
    adjacency[edge.to_module];  // ensure the node exists
    concrete[{edge.from_module, edge.to_module}].push_back(&edge);
  }

  // Iterative-order-stable DFS (std::map / std::set give sorted walks, so
  // reports are deterministic). A gray hit on the path is a cycle.
  enum class Color { kWhite, kGray, kBlack };
  std::map<std::string, Color> color;
  for (const auto& [node, targets] : adjacency) color[node] = Color::kWhite;
  std::vector<std::string> path;
  std::set<std::string> seen;  // canonical cycle keys already reported
  std::vector<std::vector<std::string>> cycles;

  const std::function<void(const std::string&)> dfs =
      [&](const std::string& node) {
        color[node] = Color::kGray;
        path.push_back(node);
        for (const std::string& next : adjacency[node]) {
          if (color[next] == Color::kWhite) {
            dfs(next);
          } else if (color[next] == Color::kGray) {
            const auto begin =
                std::find(path.begin(), path.end(), next);
            std::vector<std::string> cycle(begin, path.end());
            // Canonical form: rotate so the smallest module leads.
            const auto min_it =
                std::min_element(cycle.begin(), cycle.end());
            std::rotate(cycle.begin(), min_it, cycle.end());
            std::string key;
            for (const std::string& m : cycle) key += m + "->";
            if (seen.insert(key).second) cycles.push_back(std::move(cycle));
          }
        }
        path.pop_back();
        color[node] = Color::kBlack;
      };
  for (const auto& [node, targets] : adjacency) {
    if (color[node] == Color::kWhite) dfs(node);
  }

  std::vector<Violation> out;
  for (const std::vector<std::string>& cycle : cycles) {
    // Collect the concrete edges along the cycle; pick the smallest
    // (file, line) one as the report anchor.
    std::vector<const IncludeEdge*> on_cycle;
    for (std::size_t i = 0; i < cycle.size(); ++i) {
      const auto& from = cycle[i];
      const auto& to = cycle[(i + 1) % cycle.size()];
      const auto it = concrete.find({from, to});
      TGI_CHECK(it != concrete.end(),
                "cycle edge " << from << "->" << to << " has no include");
      for (const IncludeEdge* e : it->second) on_cycle.push_back(e);
    }
    if (honor_waivers) {
      const bool all_waived =
          std::all_of(on_cycle.begin(), on_cycle.end(),
                      [](const IncludeEdge* e) { return e->waived_cycle; });
      if (all_waived) continue;
    }
    const IncludeEdge* anchor = *std::min_element(
        on_cycle.begin(), on_cycle.end(),
        [](const IncludeEdge* a, const IncludeEdge* b) {
          if (a->file != b->file) return a->file < b->file;
          return a->line < b->line;
        });
    std::string ring;
    for (const std::string& m : cycle) ring += m + " -> ";
    ring += cycle.front();
    out.push_back(Violation{anchor->file, anchor->line, "include-cycle",
                            "module dependency cycle: " + ring});
  }
  sort_violations(out);
  return out;
}

}  // namespace tgi::lint
