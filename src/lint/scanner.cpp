#include "lint/scanner.h"

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <tuple>

#include "util/error.h"

namespace tgi::lint {

namespace {

bool has_cpp_extension(const std::filesystem::path& p,
                       const std::vector<std::string>& extensions) {
  const std::string ext = p.extension().string();
  return std::find(extensions.begin(), extensions.end(), ext) !=
         extensions.end();
}

std::string read_file(const std::filesystem::path& p) {
  std::ifstream in(p, std::ios::binary);
  TGI_REQUIRE(in.good(), "cannot open '" << p.string() << "' for linting");
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Repo-relative, '/'-separated form of `file` under `root`.
std::string relative_path(const std::filesystem::path& file,
                          const std::filesystem::path& root) {
  return std::filesystem::relative(file, root).generic_string();
}

void sort_report(std::vector<Violation>& violations) {
  std::sort(violations.begin(), violations.end(),
            [](const Violation& a, const Violation& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
}

/// Accumulated state for the waiver audit: all markers seen, and every
/// (file, line, rule) location where some pass would fire with waivers
/// ignored — a marker not backed by such a location is stale.
struct AuditState {
  struct Marker {
    std::string file;
    std::size_t line = 0;
    std::string rule_id;
  };
  std::vector<Marker> markers;
  std::set<std::tuple<std::string, std::size_t, std::string>> raw_hits;

  void add_hits(const std::vector<Violation>& raw) {
    for (const Violation& v : raw) {
      raw_hits.insert({v.file, v.line, v.rule});
    }
  }
};

std::vector<Violation> audit_findings(const AuditState& audit) {
  std::set<std::string> known_ids;
  for (const RuleInfo& info : rule_catalog()) known_ids.insert(info.id);
  std::vector<Violation> out;
  for (const AuditState::Marker& m : audit.markers) {
    if (known_ids.count(m.rule_id) == 0) {
      out.push_back(Violation{
          m.file, m.line, "unknown-waiver",
          "`tgi-lint: allow(" + m.rule_id +
              ")` names a rule id that does not exist (see --list-rules)"});
    } else if (audit.raw_hits.count({m.file, m.line, m.rule_id}) == 0) {
      out.push_back(Violation{
          m.file, m.line, "stale-waiver",
          "`tgi-lint: allow(" + m.rule_id +
              ")` suppresses nothing on this line; delete the marker"});
    }
  }
  return out;
}

}  // namespace

std::vector<Violation> scan_file(const std::filesystem::path& on_disk,
                                 const std::string& repo_relative,
                                 const RuleSet& rules) {
  const SourceFile source = make_source_file(repo_relative, read_file(on_disk));
  return run_rules(source, rules);
}

ScanReport scan_tree(const std::filesystem::path& root,
                     const ScanOptions& options, const RuleSet& rules) {
  TGI_REQUIRE(std::filesystem::exists(root),
              "lint root '" << root.string() << "' does not exist");
  ScanReport report;
  IncludeGraph graph;
  AuditState audit;
  // The audit measures markers against the full catalog, not the possibly
  // narrowed `rules` selection — a waiver for an unselected rule is not
  // stale.
  const RuleSet all_rules = options.audit_waivers ? default_rules() : RuleSet{};
  const bool need_graph = options.check_layering || options.check_cycles ||
                          options.audit_waivers;
  for (const std::string& subdir : options.subdirs) {
    const std::filesystem::path dir = root / subdir;
    if (!std::filesystem::is_directory(dir)) continue;
    std::vector<std::filesystem::path> files;
    for (const auto& entry :
         std::filesystem::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      if (has_cpp_extension(entry.path(), options.extensions)) {
        files.push_back(entry.path());
      }
    }
    // Directory iteration order is unspecified; sort for stable reports.
    std::sort(files.begin(), files.end());
    for (const auto& file : files) {
      const SourceFile source =
          make_source_file(relative_path(file, root), read_file(file));
      report.files_scanned += 1;
      std::vector<Violation> violations = run_rules(source, rules);
      report.violations.insert(report.violations.end(),
                               std::make_move_iterator(violations.begin()),
                               std::make_move_iterator(violations.end()));
      if (need_graph) graph.add_file(source);
      if (options.audit_waivers) {
        for (WaiverMarker& marker : collect_waivers(source)) {
          audit.markers.push_back(AuditState::Marker{
              source.path, marker.line, std::move(marker.rule_id)});
        }
        audit.add_hits(run_rules_unsuppressed(source, all_rules));
      }
    }
  }
  const LayeringSpec& spec = options.layering_spec != nullptr
                                 ? *options.layering_spec
                                 : default_layering_spec();
  if (options.check_layering) {
    std::vector<Violation> found = graph.check_layering(spec);
    report.violations.insert(report.violations.end(),
                             std::make_move_iterator(found.begin()),
                             std::make_move_iterator(found.end()));
  }
  if (options.check_cycles) {
    std::vector<Violation> found = graph.check_cycles();
    report.violations.insert(report.violations.end(),
                             std::make_move_iterator(found.begin()),
                             std::make_move_iterator(found.end()));
  }
  if (options.audit_waivers) {
    audit.add_hits(graph.check_layering(spec, /*honor_waivers=*/false));
    audit.add_hits(graph.check_cycles(/*honor_waivers=*/false));
    std::vector<Violation> found = audit_findings(audit);
    report.violations.insert(report.violations.end(),
                             std::make_move_iterator(found.begin()),
                             std::make_move_iterator(found.end()));
  }
  sort_report(report.violations);
  return report;
}

}  // namespace tgi::lint
