#include "lint/scanner.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "util/error.h"

namespace tgi::lint {

namespace {

bool has_cpp_extension(const std::filesystem::path& p,
                       const std::vector<std::string>& extensions) {
  const std::string ext = p.extension().string();
  return std::find(extensions.begin(), extensions.end(), ext) !=
         extensions.end();
}

std::string read_file(const std::filesystem::path& p) {
  std::ifstream in(p, std::ios::binary);
  TGI_REQUIRE(in.good(), "cannot open '" << p.string() << "' for linting");
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Repo-relative, '/'-separated form of `file` under `root`.
std::string relative_path(const std::filesystem::path& file,
                          const std::filesystem::path& root) {
  return std::filesystem::relative(file, root).generic_string();
}

}  // namespace

std::vector<Violation> scan_file(const std::filesystem::path& on_disk,
                                 const std::string& repo_relative,
                                 const RuleSet& rules) {
  const SourceFile source = make_source_file(repo_relative, read_file(on_disk));
  return run_rules(source, rules);
}

ScanReport scan_tree(const std::filesystem::path& root,
                     const ScanOptions& options, const RuleSet& rules) {
  TGI_REQUIRE(std::filesystem::exists(root),
              "lint root '" << root.string() << "' does not exist");
  ScanReport report;
  for (const std::string& subdir : options.subdirs) {
    const std::filesystem::path dir = root / subdir;
    if (!std::filesystem::is_directory(dir)) continue;
    std::vector<std::filesystem::path> files;
    for (const auto& entry :
         std::filesystem::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      if (has_cpp_extension(entry.path(), options.extensions)) {
        files.push_back(entry.path());
      }
    }
    // Directory iteration order is unspecified; sort for stable reports.
    std::sort(files.begin(), files.end());
    for (const auto& file : files) {
      auto violations = scan_file(file, relative_path(file, root), rules);
      report.files_scanned += 1;
      report.violations.insert(report.violations.end(),
                               std::make_move_iterator(violations.begin()),
                               std::make_move_iterator(violations.end()));
    }
  }
  std::sort(report.violations.begin(), report.violations.end(),
            [](const Violation& a, const Violation& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return report;
}

}  // namespace tgi::lint
