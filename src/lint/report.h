// Rule selection and report rendering for the tgi_lint driver.
//
// `selection_by_id` maps a user-supplied rules= list onto the passes that
// implement each id (per-file matchers vs. whole-graph checks), and the
// render_* functions turn a ScanReport into the two supported output
// formats: the classic `file:line: [rule] message` text transcript, and a
// machine-readable JSON document for CI artifacts.
#pragma once

#include <string>
#include <vector>

#include "lint/scanner.h"

namespace tgi::lint {

/// Which passes to run, resolved from a rules= id list.
struct Selection {
  RuleSet file_rules;    // per-file matchers to run
  bool layering = true;  // include-graph layering-violation pass
  bool cycles = true;    // include-graph include-cycle pass
};

/// Everything on: all per-file rules plus both graph passes.
Selection default_selection();

/// The passes implementing exactly `ids`. Graph rule ids
/// (`layering-violation`, `include-cycle`) switch their pass on; audit ids
/// (`stale-waiver`, `unknown-waiver`) are rejected — they are findings of
/// --audit-waivers, not selectable rules. Unknown ids throw
/// PreconditionError listing every valid id.
Selection selection_by_id(const std::vector<std::string>& ids);

/// The classic text transcript: one formatted violation per line, then the
/// `tgi-lint: N files, M violation(s)` summary. Matches the tool's stdout
/// byte-for-byte.
std::string render_text(const ScanReport& report);

/// Machine-readable report:
///   {"tool": "tgi-lint", "files_scanned": N, "clean": bool,
///    "violations": [{"file", "line", "rule", "message"}, ...]}
/// Deterministic: violations keep the report's (file, line, rule) order.
std::string render_json(const ScanReport& report);

/// JSON string-literal escaping (quotes, backslashes, control characters).
std::string json_escape(std::string_view text);

}  // namespace tgi::lint
