// Filesystem driver for tgi-lint: walks the repo tree, feeds each C++
// source file through the rule set, and aggregates the violations.
#pragma once

#include <cstddef>
#include <filesystem>
#include <string>
#include <vector>

#include "lint/rules.h"

namespace tgi::lint {

/// Which parts of the repository to scan.
struct ScanOptions {
  /// Top-level directories under the repo root to walk, in order.
  std::vector<std::string> subdirs = {"src", "tools", "bench", "examples",
                                      "tests"};
  /// File extensions treated as C++ sources.
  std::vector<std::string> extensions = {".h", ".hpp", ".cpp", ".cc"};
};

/// Result of one tree scan.
struct ScanReport {
  std::size_t files_scanned = 0;
  std::vector<Violation> violations;  // sorted by (file, line, rule)

  [[nodiscard]] bool clean() const { return violations.empty(); }
};

/// Reads and lints one file on disk. `repo_relative` is the path recorded in
/// violations and used to classify the file; `on_disk` is where to read it.
std::vector<Violation> scan_file(const std::filesystem::path& on_disk,
                                 const std::string& repo_relative,
                                 const RuleSet& rules);

/// Walks `root`'s configured subdirectories and lints every matching file.
/// Missing subdirectories are skipped (a repo need not have examples/).
/// Throws PreconditionError if `root` itself does not exist.
ScanReport scan_tree(const std::filesystem::path& root,
                     const ScanOptions& options, const RuleSet& rules);

}  // namespace tgi::lint
