// Filesystem driver for tgi-lint: walks the repo tree, feeds each C++
// source file through the rule set, accumulates the module include graph,
// and aggregates the violations from every pass.
#pragma once

#include <cstddef>
#include <filesystem>
#include <string>
#include <vector>

#include "lint/include_graph.h"
#include "lint/rules.h"

namespace tgi::lint {

/// Which parts of the repository to scan and which passes to run.
struct ScanOptions {
  /// Top-level directories under the repo root to walk, in order.
  std::vector<std::string> subdirs = {"src", "tools", "bench", "examples",
                                      "tests"};
  /// File extensions treated as C++ sources.
  std::vector<std::string> extensions = {".h", ".hpp", ".cpp", ".cc"};
  /// Run the include-graph layering check over src/ (`layering-violation`).
  bool check_layering = true;
  /// Run the include-graph cycle check over src/ (`include-cycle`).
  bool check_cycles = true;
  /// Audit `tgi-lint: allow(...)` markers: report `unknown-waiver` for
  /// markers naming a rule id that does not exist and `stale-waiver` for
  /// markers that suppress no violation on their line. The audit always
  /// measures against the FULL rule set and both graph passes (independent
  /// of any rules= subset), and audit findings are themselves unwaivable.
  bool audit_waivers = false;
  /// Layering spec for the graph pass; nullptr means the checked-in
  /// default_layering_spec().
  const LayeringSpec* layering_spec = nullptr;
};

/// Result of one tree scan.
struct ScanReport {
  std::size_t files_scanned = 0;
  std::vector<Violation> violations;  // sorted by (file, line, rule)

  [[nodiscard]] bool clean() const { return violations.empty(); }
};

/// Reads and lints one file on disk with the per-file rules only. The
/// graph passes need the whole tree and live in scan_tree. `repo_relative`
/// is the path recorded in violations and used to classify the file;
/// `on_disk` is where to read it.
std::vector<Violation> scan_file(const std::filesystem::path& on_disk,
                                 const std::string& repo_relative,
                                 const RuleSet& rules);

/// Walks `root`'s configured subdirectories, lints every matching file,
/// then runs the enabled whole-tree passes (include graph, waiver audit).
/// Missing subdirectories are skipped (a repo need not have examples/).
/// Throws PreconditionError if `root` itself does not exist.
ScanReport scan_tree(const std::filesystem::path& root,
                     const ScanOptions& options, const RuleSet& rules);

}  // namespace tgi::lint
