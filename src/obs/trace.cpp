#include "obs/trace.h"

#include <ostream>

#include "obs/json.h"
#include "util/error.h"
#include "util/table.h"

namespace tgi::obs {

PointRecorder::PointRecorder(std::size_t point_index, std::string label)
    : point_index_(point_index), label_(std::move(label)) {}

void PointRecorder::advance(util::Seconds dt) {
  TGI_REQUIRE(dt.value() >= 0.0, "trace clock cannot run backwards");
  now_ += dt;
}

void PointRecorder::set_context(std::size_t benchmark, std::size_t attempt) {
  benchmark_ = benchmark;
  attempt_ = attempt;
}

void PointRecorder::span(std::string name, std::string category,
                         util::Seconds start, util::Seconds duration,
                         ArgList args) {
  TGI_REQUIRE(duration.value() >= 0.0, "span duration must be >= 0");
  TraceEvent event;
  event.kind = TraceEvent::Kind::kSpan;
  event.name = std::move(name);
  event.category = std::move(category);
  event.benchmark = benchmark_;
  event.attempt = attempt_;
  event.start = start;
  event.duration = duration;
  event.args = std::move(args);
  events_.push_back(std::move(event));
}

void PointRecorder::instant(std::string name, std::string category,
                            ArgList args) {
  TraceEvent event;
  event.kind = TraceEvent::Kind::kInstant;
  event.name = std::move(name);
  event.category = std::move(category);
  event.benchmark = benchmark_;
  event.attempt = attempt_;
  event.start = now_;
  event.args = std::move(args);
  events_.push_back(std::move(event));
}

SweepTrace SweepTrace::merge(std::vector<PointRecorder> points) {
  SweepTrace trace;
  trace.points_ = std::move(points);
  // Fold totals in vector order — the engine preallocates this as point
  // order, so the floating-point sums are thread-count-invariant.
  for (const PointRecorder& point : trace.points_) {
    trace.totals_.merge(point.metrics());
  }
  return trace;
}

std::size_t SweepTrace::event_count() const {
  std::size_t n = 0;
  for (const PointRecorder& point : points_) n += point.events().size();
  return n;
}

namespace {

void write_args(std::ostream& out, std::size_t benchmark, std::size_t attempt,
                const ArgList& args) {
  out << "\"args\":{\"benchmark\":" << benchmark << ",\"attempt\":" << attempt;
  for (const auto& [key, value] : args) {
    out << ",\"" << json_escape(key) << "\":\"" << json_escape(value) << "\"";
  }
  out << "}";
}

void write_event(std::ostream& out, std::size_t tid, const TraceEvent& e,
                 bool& first) {
  if (!first) out << ",\n";
  first = false;
  out << "{\"name\":\"" << json_escape(e.name) << "\",\"cat\":\""
      << json_escape(e.category) << "\",\"ph\":\""
      << (e.kind == TraceEvent::Kind::kSpan ? "X" : "i") << "\"";
  if (e.kind == TraceEvent::Kind::kInstant) out << ",\"s\":\"t\"";
  out << ",\"pid\":0,\"tid\":" << tid << ",\"ts\":"
      << json_microseconds(e.start);
  if (e.kind == TraceEvent::Kind::kSpan) {
    out << ",\"dur\":" << json_microseconds(e.duration);
  }
  out << ",";
  write_args(out, e.benchmark, e.attempt, e.args);
  out << "}";
}

}  // namespace

void SweepTrace::write_chrome_trace(std::ostream& out) const {
  out << "{\"traceEvents\":[\n";
  // Metadata: name each logical track after its sweep point so the viewer
  // shows "point 3 (64)" instead of a bare tid.
  out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
         "\"args\":{\"name\":\"tgi sweep (simulated time)\"}}";
  bool first = false;
  for (const PointRecorder& point : points_) {
    out << ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":"
        << point.point_index() << ",\"args\":{\"name\":\"point "
        << point.point_index();
    if (!point.label().empty()) out << " (" << json_escape(point.label()) << ")";
    out << "\"}}";
  }
  for (const PointRecorder& point : points_) {
    for (const TraceEvent& event : point.events()) {
      write_event(out, point.point_index(), event, first);
    }
  }
  out << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

void SweepTrace::write_metrics_csv(std::ostream& out) const {
  util::CsvWriter csv(out);
  csv.write_row({"scope", "metric", "kind", "value"});
  const auto write_scope = [&](const std::string& scope,
                               const MetricRegistry& registry) {
    for (const Metric& metric : registry.sorted()) {
      csv.write_row({scope, metric.name, metric_kind_name(metric.kind),
                     format_metric_value(metric.value)});
    }
  };
  write_scope("total", totals_);
  for (const PointRecorder& point : points_) {
    write_scope("point" + std::to_string(point.point_index()),
                point.metrics());
  }
}

}  // namespace tgi::obs
