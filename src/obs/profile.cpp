#include "obs/profile.h"

#include <algorithm>
#include <ostream>
#include <tuple>
#include <utility>

#include "obs/json.h"
#include "util/error.h"
#include "util/format.h"

namespace tgi::obs {

WallProfiler::WallProfiler() : epoch_(std::chrono::steady_clock::now()) {}

double WallProfiler::now_us() const {
  const auto dt = std::chrono::steady_clock::now() - epoch_;
  return std::chrono::duration<double, std::micro>(dt).count();
}

void WallProfiler::record(std::string name, std::size_t track,
                          double start_us, double end_us) {
  TGI_REQUIRE(end_us >= start_us, "wall span must not end before it starts");
  const std::scoped_lock lock(mutex_);
  spans_.push_back({std::move(name), track, start_us, end_us});
}

util::ThreadPool::TaskHook WallProfiler::task_hook(std::string name_prefix) {
  return [this, prefix = std::move(name_prefix)](
             std::size_t worker, std::size_t task, bool begin) {
    if (begin) {
      const double start = now_us();
      const std::scoped_lock lock(mutex_);
      if (worker >= open_.size()) open_.resize(worker + 1);
      open_[worker] = {task, start, true};
      return;
    }
    const double end = now_us();
    double start = end;
    {
      const std::scoped_lock lock(mutex_);
      if (worker < open_.size() && open_[worker].active &&
          open_[worker].task == task) {
        start = open_[worker].start_us;
        open_[worker].active = false;
      }
    }
    record(prefix + " " + std::to_string(task), worker, start, end);
  };
}

std::size_t WallProfiler::span_count() const {
  const std::scoped_lock lock(mutex_);
  return spans_.size();
}

void WallProfiler::write_chrome_trace(std::ostream& out) const {
  std::vector<WallSpan> spans;
  {
    const std::scoped_lock lock(mutex_);
    spans = spans_;
  }
  std::sort(spans.begin(), spans.end(),
            [](const WallSpan& a, const WallSpan& b) {
              return std::tie(a.start_us, a.track, a.name) <
                     std::tie(b.start_us, b.track, b.name);
            });
  out << "{\"traceEvents\":[\n";
  out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
         "\"args\":{\"name\":\"tgi sweep (wall clock, non-deterministic)\"}}";
  for (const WallSpan& span : spans) {
    out << ",\n{\"name\":\"" << json_escape(span.name)
        << "\",\"cat\":\"wall\",\"ph\":\"X\",\"pid\":0,\"tid\":" << span.track
        << ",\"ts\":" << util::fixed(span.start_us, 3)
        << ",\"dur\":" << util::fixed(span.end_us - span.start_us, 3)
        << ",\"args\":{}}";
  }
  out << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

}  // namespace tgi::obs
