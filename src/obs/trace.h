// Deterministic structured tracing for the sweep engine.
//
// The paper's argument rests on trustworthy per-benchmark measurements;
// once the fault plane (harness/faults.h) and the recovery policy
// (harness/robust.h) started retrying, rejecting, and dropping work, the
// decisions behind each published number became invisible. This module
// records them as structured spans and events on a SIMULATED timeline —
// the same accounted seconds the robustness layer already charges — keyed
// by logical indices (point_index, benchmark, attempt), never by wall
// clock or completion order.
//
// Determinism contract (DESIGN.md §10): each sweep point records into its
// own PointRecorder on its worker thread; SweepTrace::merge concatenates
// recorders BY POINT INDEX. Because every recorded field derives from the
// deterministic simulation, trace output is bit-identical at threads=1/2/8.
// Wall-clock timing lives in the separate, explicitly non-deterministic
// profile channel (obs/profile.h) and never mixes into this one.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "util/units.h"

namespace tgi::obs {

/// Key-value annotations on a span/event, emitted in insertion order.
using ArgList = std::vector<std::pair<std::string, std::string>>;

/// One recorded trace entry on a point's simulated timeline.
struct TraceEvent {
  enum class Kind {
    kSpan,     ///< closed interval [start, start + duration]
    kInstant,  ///< zero-duration marker at `start`
  };
  Kind kind = Kind::kInstant;
  std::string name;      ///< e.g. "HPL", "backoff", "benchmark-failure"
  std::string category;  ///< e.g. "benchmark", "fault", "recovery", "point"
  std::size_t benchmark = 0;      ///< logical benchmark index in the suite
  std::size_t attempt = 0;        ///< retry ordinal (0 = first attempt)
  util::Seconds start{0.0};       ///< simulated-time begin
  util::Seconds duration{0.0};    ///< simulated-time extent (spans only)
  ArgList args;
};

/// Collects one sweep point's spans, events, and metrics. Owns the point's
/// simulated clock: runners advance it by the modeled cost of each attempt
/// (run elapsed time, accounted backoff, accounted stalls), so span
/// timestamps reproduce the timeline an operator would have lived through.
/// Not thread-safe — each point records from exactly one worker.
class PointRecorder {
 public:
  PointRecorder() = default;
  explicit PointRecorder(std::size_t point_index, std::string label = "");

  [[nodiscard]] std::size_t point_index() const { return point_index_; }
  [[nodiscard]] const std::string& label() const { return label_; }
  void set_label(std::string label) { label_ = std::move(label); }

  /// Current simulated time on this point's timeline.
  [[nodiscard]] util::Seconds now() const { return now_; }

  /// Advances the simulated clock. Precondition: dt >= 0.
  void advance(util::Seconds dt);

  /// Sets the logical (benchmark, attempt) indices stamped onto every
  /// subsequently recorded span/event.
  void set_context(std::size_t benchmark, std::size_t attempt);
  [[nodiscard]] std::size_t benchmark() const { return benchmark_; }
  [[nodiscard]] std::size_t attempt() const { return attempt_; }

  /// Records a closed span on the simulated timeline.
  void span(std::string name, std::string category, util::Seconds start,
            util::Seconds duration, ArgList args = {});

  /// Records a zero-duration marker at the current simulated time.
  void instant(std::string name, std::string category, ArgList args = {});

  /// Replays a previously recorded event verbatim (checkpoint resume,
  /// DESIGN.md §11): no context stamping, no clock coupling — a restored
  /// recorder reproduces the journaling one byte-for-byte.
  void restore_event(TraceEvent event) { events_.push_back(std::move(event)); }

  [[nodiscard]] MetricRegistry& metrics() { return metrics_; }
  [[nodiscard]] const MetricRegistry& metrics() const { return metrics_; }

  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }

 private:
  std::size_t point_index_ = 0;
  std::string label_;
  util::Seconds now_{0.0};
  std::size_t benchmark_ = 0;
  std::size_t attempt_ = 0;
  std::vector<TraceEvent> events_;
  MetricRegistry metrics_;
};

/// A whole sweep's merged observability record: per-point recorders in
/// point-index order plus the merged metric totals.
class SweepTrace {
 public:
  SweepTrace() = default;

  /// Merges per-point recorders BY INDEX (the vector's order, which the
  /// sweep engine preallocates as point order): totals are folded
  /// 0, 1, 2, ... so even floating-point counter sums are reproducible
  /// for every thread count.
  [[nodiscard]] static SweepTrace merge(std::vector<PointRecorder> points);

  [[nodiscard]] const std::vector<PointRecorder>& points() const {
    return points_;
  }
  [[nodiscard]] const MetricRegistry& totals() const { return totals_; }
  [[nodiscard]] std::size_t event_count() const;

  /// Chrome trace-event-format JSON (load in chrome://tracing or
  /// Perfetto): one "X"/"i" event per recorded entry, tid = point index,
  /// ts/dur = simulated microseconds. Byte-deterministic.
  void write_chrome_trace(std::ostream& out) const;

  /// metrics.csv: `scope,metric,kind,value` — merged totals first
  /// (scope "total"), then each point (scope "point<k>"), metrics sorted
  /// by name within each scope. Byte-deterministic.
  void write_metrics_csv(std::ostream& out) const;

 private:
  std::vector<PointRecorder> points_;
  MetricRegistry totals_;
};

}  // namespace tgi::obs
