#include "obs/json.h"

#include <cstdio>

#include "util/format.h"

namespace tgi::obs {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_microseconds(util::Seconds seconds) {
  return util::fixed(seconds.value() * 1e6, 3);
}

}  // namespace tgi::obs
