#include "obs/metrics.h"

#include <cmath>

#include "util/error.h"
#include "util/format.h"

namespace tgi::obs {

const char* metric_kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
  }
  return "?";
}

namespace {

void require_name(const std::string& name) {
  TGI_REQUIRE(!name.empty(), "metric name must not be empty");
  TGI_REQUIRE(name.find(',') == std::string::npos &&
                  name.find('\n') == std::string::npos &&
                  name.find('"') == std::string::npos,
              "metric name '" << name << "' must stay CSV/JSON-clean");
}

}  // namespace

void MetricRegistry::add(const std::string& name, double delta) {
  require_name(name);
  auto [it, inserted] =
      metrics_.try_emplace(name, Metric{name, MetricKind::kCounter, 0.0});
  TGI_REQUIRE(it->second.kind == MetricKind::kCounter,
              "metric '" << name << "' is a gauge, not a counter");
  it->second.value += delta;
}

void MetricRegistry::set_max(const std::string& name, double value) {
  require_name(name);
  auto [it, inserted] =
      metrics_.try_emplace(name, Metric{name, MetricKind::kGauge, value});
  TGI_REQUIRE(it->second.kind == MetricKind::kGauge,
              "metric '" << name << "' is a counter, not a gauge");
  if (value > it->second.value) it->second.value = value;
}

bool MetricRegistry::has(const std::string& name) const {
  return metrics_.count(name) != 0;
}

double MetricRegistry::value(const std::string& name) const {
  const auto it = metrics_.find(name);
  return it == metrics_.end() ? 0.0 : it->second.value;
}

void MetricRegistry::merge(const MetricRegistry& other) {
  for (const auto& [name, metric] : other.metrics_) {
    if (metric.kind == MetricKind::kCounter) {
      add(name, metric.value);
    } else {
      set_max(name, metric.value);
    }
  }
}

std::vector<Metric> MetricRegistry::sorted() const {
  std::vector<Metric> out;
  out.reserve(metrics_.size());
  for (const auto& [_, metric] : metrics_) out.push_back(metric);
  return out;
}

std::string format_metric_value(double value) {
  if (std::isfinite(value) && value == std::floor(value) &&
      std::abs(value) < 1e15) {
    return std::to_string(static_cast<long long>(value));
  }
  return util::fixed(value, 6);
}

}  // namespace tgi::obs
