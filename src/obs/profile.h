// Wall-clock profile channel — the explicitly NON-deterministic side of
// the observability plane.
//
// The deterministic tracer (obs/trace.h) answers "what did the sweep
// decide and how much simulated time did it charge"; this channel answers
// "where did the host's real milliseconds go". Span durations come from
// std::chrono::steady_clock on whichever worker ran the task, so the
// output varies run to run and thread count to thread count BY DESIGN. It
// is therefore written to a separate profile.json and excluded from every
// golden/byte comparison (DESIGN.md §10); nothing in the deterministic
// pipeline may read it back.
#pragma once

#include <chrono>
#include <cstddef>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "util/thread_pool.h"

namespace tgi::obs {

/// One wall-clock span, in microseconds since the profiler's epoch.
struct WallSpan {
  std::string name;
  std::size_t track = 0;  ///< worker index (or 0 for the calling thread)
  double start_us = 0.0;
  double end_us = 0.0;
};

/// Thread-safe wall-clock span collector. Safe to share across pool
/// workers; a mutex guards the entry list (contention is negligible next
/// to the seconds-long tasks it brackets).
class WallProfiler {
 public:
  /// Epoch = construction time; all timestamps are relative to it.
  WallProfiler();

  /// Microseconds elapsed since the epoch.
  [[nodiscard]] double now_us() const;

  /// Records a finished span. Precondition: end_us >= start_us.
  void record(std::string name, std::size_t track, double start_us,
              double end_us);

  /// A ThreadPool task hook that brackets every pool task with a wall
  /// span named "<name_prefix> <task>". Install with
  /// ThreadPool::set_task_hook before submitting; the profiler must
  /// outlive the pool.
  [[nodiscard]] util::ThreadPool::TaskHook task_hook(
      std::string name_prefix = "task");

  [[nodiscard]] std::size_t span_count() const;

  /// Chrome trace-event-format JSON (tid = worker track). Entries are
  /// sorted by (start, track, name) at write time so the file is stable
  /// for a given set of spans, but the spans themselves are wall-clock
  /// measurements: never byte-compare two runs' profiles.
  void write_chrome_trace(std::ostream& out) const;

 private:
  struct Open {
    std::size_t task = 0;
    double start_us = 0.0;
    bool active = false;
  };

  mutable std::mutex mutex_;
  std::chrono::steady_clock::time_point epoch_;
  std::vector<WallSpan> spans_;
  std::vector<Open> open_;  // per-worker in-flight task, for task_hook
};

}  // namespace tgi::obs
