// Minimal deterministic JSON emission helpers for the trace writers.
//
// The trace/profile writers need exactly two things a formatting library
// would give them — string escaping and stable number rendering — and
// nothing else; keeping them here avoids a dependency and guarantees the
// byte-level determinism the golden trace comparisons rely on.
#pragma once

#include <string>

#include "util/units.h"

namespace tgi::obs {

/// Escapes a string for inclusion inside a JSON string literal (quotes,
/// backslashes, and control characters; everything else passes through).
[[nodiscard]] std::string json_escape(const std::string& text);

/// Renders a simulated-time instant/extent as Chrome-trace microseconds
/// with fixed 3-digit precision ("1234567.890") — deterministic for
/// bit-identical doubles.
[[nodiscard]] std::string json_microseconds(util::Seconds seconds);

}  // namespace tgi::obs
