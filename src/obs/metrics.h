// Deterministic counter/gauge registry for the observability plane.
//
// Every number the sweep engine wants to report about itself — runs,
// retries, backoff seconds, meter faults, rejected readings — flows
// through a MetricRegistry instead of ad-hoc struct fields, so the bench
// harnesses and tgi_sweep can emit one uniform metrics.csv. Registries are
// collected per sweep point (single-threaded within a point) and merged BY
// POINT INDEX, never by completion order: counter merge is addition in
// index order, gauge merge is max, so the merged table is bit-identical
// for every thread count (DESIGN.md §10).
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace tgi::obs {

/// How a metric's samples combine.
enum class MetricKind {
  kCounter,  ///< monotone accumulator; merge = sum (in point-index order)
  kGauge,    ///< level observation; merge = max
};

[[nodiscard]] const char* metric_kind_name(MetricKind kind);

/// One named metric with its kind and current value.
struct Metric {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  double value = 0.0;
};

/// A name -> metric map with deterministic enumeration (sorted by name)
/// and deterministic merge semantics. Not thread-safe: one registry per
/// sweep point, merged after the sweep joins.
class MetricRegistry {
 public:
  /// Adds `delta` to counter `name` (created at zero on first use).
  /// Throws PreconditionError if `name` already names a gauge.
  void add(const std::string& name, double delta = 1.0);

  /// Raises gauge `name` to at least `value` (created on first use).
  /// Throws PreconditionError if `name` already names a counter.
  void set_max(const std::string& name, double value);

  [[nodiscard]] bool has(const std::string& name) const;

  /// Current value; 0.0 when the metric was never touched.
  [[nodiscard]] double value(const std::string& name) const;

  /// Folds `other` into this registry: counters sum, gauges max. Call in
  /// point-index order so floating-point sums are reproducible.
  void merge(const MetricRegistry& other);

  /// All metrics sorted by name — the deterministic emission order.
  [[nodiscard]] std::vector<Metric> sorted() const;

  [[nodiscard]] std::size_t size() const { return metrics_.size(); }
  [[nodiscard]] bool empty() const { return metrics_.empty(); }

 private:
  std::map<std::string, Metric> metrics_;
};

/// Renders a metric value for CSV/JSON: integral values print without a
/// fractional part ("36"), everything else as fixed 6-digit decimals —
/// both deterministic for bit-identical inputs.
[[nodiscard]] std::string format_metric_value(double value);

}  // namespace tgi::obs
