file(REMOVE_RECURSE
  "libtgi_util.a"
)
