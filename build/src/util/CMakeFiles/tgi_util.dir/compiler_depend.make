# Empty compiler generated dependencies file for tgi_util.
# This may be replaced when dependencies are built.
