file(REMOVE_RECURSE
  "CMakeFiles/tgi_util.dir/config.cpp.o"
  "CMakeFiles/tgi_util.dir/config.cpp.o.d"
  "CMakeFiles/tgi_util.dir/error.cpp.o"
  "CMakeFiles/tgi_util.dir/error.cpp.o.d"
  "CMakeFiles/tgi_util.dir/format.cpp.o"
  "CMakeFiles/tgi_util.dir/format.cpp.o.d"
  "CMakeFiles/tgi_util.dir/log.cpp.o"
  "CMakeFiles/tgi_util.dir/log.cpp.o.d"
  "CMakeFiles/tgi_util.dir/rng.cpp.o"
  "CMakeFiles/tgi_util.dir/rng.cpp.o.d"
  "CMakeFiles/tgi_util.dir/table.cpp.o"
  "CMakeFiles/tgi_util.dir/table.cpp.o.d"
  "libtgi_util.a"
  "libtgi_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tgi_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
