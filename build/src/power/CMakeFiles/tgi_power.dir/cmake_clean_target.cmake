file(REMOVE_RECURSE
  "libtgi_power.a"
)
