# Empty dependencies file for tgi_power.
# This may be replaced when dependencies are built.
