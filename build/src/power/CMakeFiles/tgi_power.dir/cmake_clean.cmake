file(REMOVE_RECURSE
  "CMakeFiles/tgi_power.dir/breakdown.cpp.o"
  "CMakeFiles/tgi_power.dir/breakdown.cpp.o.d"
  "CMakeFiles/tgi_power.dir/meter.cpp.o"
  "CMakeFiles/tgi_power.dir/meter.cpp.o.d"
  "CMakeFiles/tgi_power.dir/node_model.cpp.o"
  "CMakeFiles/tgi_power.dir/node_model.cpp.o.d"
  "CMakeFiles/tgi_power.dir/spec.cpp.o"
  "CMakeFiles/tgi_power.dir/spec.cpp.o.d"
  "CMakeFiles/tgi_power.dir/timeline.cpp.o"
  "CMakeFiles/tgi_power.dir/timeline.cpp.o.d"
  "CMakeFiles/tgi_power.dir/trace.cpp.o"
  "CMakeFiles/tgi_power.dir/trace.cpp.o.d"
  "libtgi_power.a"
  "libtgi_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tgi_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
