
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/breakdown.cpp" "src/power/CMakeFiles/tgi_power.dir/breakdown.cpp.o" "gcc" "src/power/CMakeFiles/tgi_power.dir/breakdown.cpp.o.d"
  "/root/repo/src/power/meter.cpp" "src/power/CMakeFiles/tgi_power.dir/meter.cpp.o" "gcc" "src/power/CMakeFiles/tgi_power.dir/meter.cpp.o.d"
  "/root/repo/src/power/node_model.cpp" "src/power/CMakeFiles/tgi_power.dir/node_model.cpp.o" "gcc" "src/power/CMakeFiles/tgi_power.dir/node_model.cpp.o.d"
  "/root/repo/src/power/spec.cpp" "src/power/CMakeFiles/tgi_power.dir/spec.cpp.o" "gcc" "src/power/CMakeFiles/tgi_power.dir/spec.cpp.o.d"
  "/root/repo/src/power/timeline.cpp" "src/power/CMakeFiles/tgi_power.dir/timeline.cpp.o" "gcc" "src/power/CMakeFiles/tgi_power.dir/timeline.cpp.o.d"
  "/root/repo/src/power/trace.cpp" "src/power/CMakeFiles/tgi_power.dir/trace.cpp.o" "gcc" "src/power/CMakeFiles/tgi_power.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tgi_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/tgi_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
