file(REMOVE_RECURSE
  "CMakeFiles/tgi_fs.dir/disk.cpp.o"
  "CMakeFiles/tgi_fs.dir/disk.cpp.o.d"
  "CMakeFiles/tgi_fs.dir/filesystem.cpp.o"
  "CMakeFiles/tgi_fs.dir/filesystem.cpp.o.d"
  "CMakeFiles/tgi_fs.dir/page_cache.cpp.o"
  "CMakeFiles/tgi_fs.dir/page_cache.cpp.o.d"
  "libtgi_fs.a"
  "libtgi_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tgi_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
