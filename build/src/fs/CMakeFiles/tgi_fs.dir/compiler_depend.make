# Empty compiler generated dependencies file for tgi_fs.
# This may be replaced when dependencies are built.
