file(REMOVE_RECURSE
  "libtgi_fs.a"
)
