file(REMOVE_RECURSE
  "CMakeFiles/tgi_core.dir/efficiency.cpp.o"
  "CMakeFiles/tgi_core.dir/efficiency.cpp.o.d"
  "CMakeFiles/tgi_core.dir/measurement.cpp.o"
  "CMakeFiles/tgi_core.dir/measurement.cpp.o.d"
  "CMakeFiles/tgi_core.dir/tgi.cpp.o"
  "CMakeFiles/tgi_core.dir/tgi.cpp.o.d"
  "libtgi_core.a"
  "libtgi_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tgi_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
