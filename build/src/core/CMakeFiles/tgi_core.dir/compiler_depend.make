# Empty compiler generated dependencies file for tgi_core.
# This may be replaced when dependencies are built.
