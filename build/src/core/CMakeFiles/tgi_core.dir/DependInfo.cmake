
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/efficiency.cpp" "src/core/CMakeFiles/tgi_core.dir/efficiency.cpp.o" "gcc" "src/core/CMakeFiles/tgi_core.dir/efficiency.cpp.o.d"
  "/root/repo/src/core/measurement.cpp" "src/core/CMakeFiles/tgi_core.dir/measurement.cpp.o" "gcc" "src/core/CMakeFiles/tgi_core.dir/measurement.cpp.o.d"
  "/root/repo/src/core/tgi.cpp" "src/core/CMakeFiles/tgi_core.dir/tgi.cpp.o" "gcc" "src/core/CMakeFiles/tgi_core.dir/tgi.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tgi_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/tgi_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/tgi_power.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
