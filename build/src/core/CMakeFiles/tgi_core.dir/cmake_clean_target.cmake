file(REMOVE_RECURSE
  "libtgi_core.a"
)
