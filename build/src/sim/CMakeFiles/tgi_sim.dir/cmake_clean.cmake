file(REMOVE_RECURSE
  "CMakeFiles/tgi_sim.dir/catalog.cpp.o"
  "CMakeFiles/tgi_sim.dir/catalog.cpp.o.d"
  "CMakeFiles/tgi_sim.dir/machine.cpp.o"
  "CMakeFiles/tgi_sim.dir/machine.cpp.o.d"
  "CMakeFiles/tgi_sim.dir/simulator.cpp.o"
  "CMakeFiles/tgi_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/tgi_sim.dir/spec_io.cpp.o"
  "CMakeFiles/tgi_sim.dir/spec_io.cpp.o.d"
  "CMakeFiles/tgi_sim.dir/workload_io.cpp.o"
  "CMakeFiles/tgi_sim.dir/workload_io.cpp.o.d"
  "libtgi_sim.a"
  "libtgi_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tgi_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
