
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/catalog.cpp" "src/sim/CMakeFiles/tgi_sim.dir/catalog.cpp.o" "gcc" "src/sim/CMakeFiles/tgi_sim.dir/catalog.cpp.o.d"
  "/root/repo/src/sim/machine.cpp" "src/sim/CMakeFiles/tgi_sim.dir/machine.cpp.o" "gcc" "src/sim/CMakeFiles/tgi_sim.dir/machine.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/sim/CMakeFiles/tgi_sim.dir/simulator.cpp.o" "gcc" "src/sim/CMakeFiles/tgi_sim.dir/simulator.cpp.o.d"
  "/root/repo/src/sim/spec_io.cpp" "src/sim/CMakeFiles/tgi_sim.dir/spec_io.cpp.o" "gcc" "src/sim/CMakeFiles/tgi_sim.dir/spec_io.cpp.o.d"
  "/root/repo/src/sim/workload_io.cpp" "src/sim/CMakeFiles/tgi_sim.dir/workload_io.cpp.o" "gcc" "src/sim/CMakeFiles/tgi_sim.dir/workload_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tgi_util.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/tgi_power.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tgi_net.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/tgi_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/tgi_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
