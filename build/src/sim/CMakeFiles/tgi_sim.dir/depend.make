# Empty dependencies file for tgi_sim.
# This may be replaced when dependencies are built.
