file(REMOVE_RECURSE
  "libtgi_sim.a"
)
