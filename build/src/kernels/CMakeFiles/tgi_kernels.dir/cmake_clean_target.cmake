file(REMOVE_RECURSE
  "libtgi_kernels.a"
)
