# Empty dependencies file for tgi_kernels.
# This may be replaced when dependencies are built.
