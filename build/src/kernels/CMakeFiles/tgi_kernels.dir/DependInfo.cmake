
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/blas.cpp" "src/kernels/CMakeFiles/tgi_kernels.dir/blas.cpp.o" "gcc" "src/kernels/CMakeFiles/tgi_kernels.dir/blas.cpp.o.d"
  "/root/repo/src/kernels/dgemm.cpp" "src/kernels/CMakeFiles/tgi_kernels.dir/dgemm.cpp.o" "gcc" "src/kernels/CMakeFiles/tgi_kernels.dir/dgemm.cpp.o.d"
  "/root/repo/src/kernels/extended_models.cpp" "src/kernels/CMakeFiles/tgi_kernels.dir/extended_models.cpp.o" "gcc" "src/kernels/CMakeFiles/tgi_kernels.dir/extended_models.cpp.o.d"
  "/root/repo/src/kernels/fft.cpp" "src/kernels/CMakeFiles/tgi_kernels.dir/fft.cpp.o" "gcc" "src/kernels/CMakeFiles/tgi_kernels.dir/fft.cpp.o.d"
  "/root/repo/src/kernels/gups.cpp" "src/kernels/CMakeFiles/tgi_kernels.dir/gups.cpp.o" "gcc" "src/kernels/CMakeFiles/tgi_kernels.dir/gups.cpp.o.d"
  "/root/repo/src/kernels/gups_model.cpp" "src/kernels/CMakeFiles/tgi_kernels.dir/gups_model.cpp.o" "gcc" "src/kernels/CMakeFiles/tgi_kernels.dir/gups_model.cpp.o.d"
  "/root/repo/src/kernels/hpl.cpp" "src/kernels/CMakeFiles/tgi_kernels.dir/hpl.cpp.o" "gcc" "src/kernels/CMakeFiles/tgi_kernels.dir/hpl.cpp.o.d"
  "/root/repo/src/kernels/hpl2d.cpp" "src/kernels/CMakeFiles/tgi_kernels.dir/hpl2d.cpp.o" "gcc" "src/kernels/CMakeFiles/tgi_kernels.dir/hpl2d.cpp.o.d"
  "/root/repo/src/kernels/hpl_model.cpp" "src/kernels/CMakeFiles/tgi_kernels.dir/hpl_model.cpp.o" "gcc" "src/kernels/CMakeFiles/tgi_kernels.dir/hpl_model.cpp.o.d"
  "/root/repo/src/kernels/iozone.cpp" "src/kernels/CMakeFiles/tgi_kernels.dir/iozone.cpp.o" "gcc" "src/kernels/CMakeFiles/tgi_kernels.dir/iozone.cpp.o.d"
  "/root/repo/src/kernels/iozone_model.cpp" "src/kernels/CMakeFiles/tgi_kernels.dir/iozone_model.cpp.o" "gcc" "src/kernels/CMakeFiles/tgi_kernels.dir/iozone_model.cpp.o.d"
  "/root/repo/src/kernels/matrix.cpp" "src/kernels/CMakeFiles/tgi_kernels.dir/matrix.cpp.o" "gcc" "src/kernels/CMakeFiles/tgi_kernels.dir/matrix.cpp.o.d"
  "/root/repo/src/kernels/netbench.cpp" "src/kernels/CMakeFiles/tgi_kernels.dir/netbench.cpp.o" "gcc" "src/kernels/CMakeFiles/tgi_kernels.dir/netbench.cpp.o.d"
  "/root/repo/src/kernels/ptrans.cpp" "src/kernels/CMakeFiles/tgi_kernels.dir/ptrans.cpp.o" "gcc" "src/kernels/CMakeFiles/tgi_kernels.dir/ptrans.cpp.o.d"
  "/root/repo/src/kernels/stream.cpp" "src/kernels/CMakeFiles/tgi_kernels.dir/stream.cpp.o" "gcc" "src/kernels/CMakeFiles/tgi_kernels.dir/stream.cpp.o.d"
  "/root/repo/src/kernels/stream_model.cpp" "src/kernels/CMakeFiles/tgi_kernels.dir/stream_model.cpp.o" "gcc" "src/kernels/CMakeFiles/tgi_kernels.dir/stream_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tgi_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tgi_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mpisim/CMakeFiles/tgi_mpisim.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/tgi_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/tgi_power.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/tgi_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tgi_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
