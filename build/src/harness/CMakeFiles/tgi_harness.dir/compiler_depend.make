# Empty compiler generated dependencies file for tgi_harness.
# This may be replaced when dependencies are built.
