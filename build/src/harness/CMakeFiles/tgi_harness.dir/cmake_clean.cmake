file(REMOVE_RECURSE
  "CMakeFiles/tgi_harness.dir/measurement_io.cpp.o"
  "CMakeFiles/tgi_harness.dir/measurement_io.cpp.o.d"
  "CMakeFiles/tgi_harness.dir/native.cpp.o"
  "CMakeFiles/tgi_harness.dir/native.cpp.o.d"
  "CMakeFiles/tgi_harness.dir/ranking.cpp.o"
  "CMakeFiles/tgi_harness.dir/ranking.cpp.o.d"
  "CMakeFiles/tgi_harness.dir/report.cpp.o"
  "CMakeFiles/tgi_harness.dir/report.cpp.o.d"
  "CMakeFiles/tgi_harness.dir/suite.cpp.o"
  "CMakeFiles/tgi_harness.dir/suite.cpp.o.d"
  "libtgi_harness.a"
  "libtgi_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tgi_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
