file(REMOVE_RECURSE
  "libtgi_harness.a"
)
