# Empty dependencies file for tgi_net.
# This may be replaced when dependencies are built.
