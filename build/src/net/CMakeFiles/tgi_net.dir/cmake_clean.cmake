file(REMOVE_RECURSE
  "CMakeFiles/tgi_net.dir/collectives.cpp.o"
  "CMakeFiles/tgi_net.dir/collectives.cpp.o.d"
  "CMakeFiles/tgi_net.dir/interconnect.cpp.o"
  "CMakeFiles/tgi_net.dir/interconnect.cpp.o.d"
  "libtgi_net.a"
  "libtgi_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tgi_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
