file(REMOVE_RECURSE
  "libtgi_net.a"
)
