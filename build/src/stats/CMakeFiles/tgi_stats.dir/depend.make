# Empty dependencies file for tgi_stats.
# This may be replaced when dependencies are built.
