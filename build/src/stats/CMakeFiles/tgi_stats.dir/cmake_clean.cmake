file(REMOVE_RECURSE
  "CMakeFiles/tgi_stats.dir/bootstrap.cpp.o"
  "CMakeFiles/tgi_stats.dir/bootstrap.cpp.o.d"
  "CMakeFiles/tgi_stats.dir/correlation.cpp.o"
  "CMakeFiles/tgi_stats.dir/correlation.cpp.o.d"
  "CMakeFiles/tgi_stats.dir/descriptive.cpp.o"
  "CMakeFiles/tgi_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/tgi_stats.dir/means.cpp.o"
  "CMakeFiles/tgi_stats.dir/means.cpp.o.d"
  "CMakeFiles/tgi_stats.dir/regression.cpp.o"
  "CMakeFiles/tgi_stats.dir/regression.cpp.o.d"
  "libtgi_stats.a"
  "libtgi_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tgi_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
