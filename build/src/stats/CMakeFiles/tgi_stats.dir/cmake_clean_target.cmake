file(REMOVE_RECURSE
  "libtgi_stats.a"
)
