file(REMOVE_RECURSE
  "libtgi_mpisim.a"
)
