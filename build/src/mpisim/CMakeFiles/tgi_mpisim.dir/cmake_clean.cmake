file(REMOVE_RECURSE
  "CMakeFiles/tgi_mpisim.dir/groups.cpp.o"
  "CMakeFiles/tgi_mpisim.dir/groups.cpp.o.d"
  "CMakeFiles/tgi_mpisim.dir/runtime.cpp.o"
  "CMakeFiles/tgi_mpisim.dir/runtime.cpp.o.d"
  "libtgi_mpisim.a"
  "libtgi_mpisim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tgi_mpisim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
