
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mpisim/groups.cpp" "src/mpisim/CMakeFiles/tgi_mpisim.dir/groups.cpp.o" "gcc" "src/mpisim/CMakeFiles/tgi_mpisim.dir/groups.cpp.o.d"
  "/root/repo/src/mpisim/runtime.cpp" "src/mpisim/CMakeFiles/tgi_mpisim.dir/runtime.cpp.o" "gcc" "src/mpisim/CMakeFiles/tgi_mpisim.dir/runtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tgi_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
