# Empty dependencies file for tgi_mpisim.
# This may be replaced when dependencies are built.
