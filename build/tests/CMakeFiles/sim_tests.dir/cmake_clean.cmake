file(REMOVE_RECURSE
  "CMakeFiles/sim_tests.dir/sim/test_catalog.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/test_catalog.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/test_dvfs.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/test_dvfs.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/test_extended_models.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/test_extended_models.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/test_gups_model.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/test_gups_model.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/test_machine.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/test_machine.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/test_simulator.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/test_simulator.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/test_spec_io.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/test_spec_io.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/test_workload_io.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/test_workload_io.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/test_workload_models.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/test_workload_models.cpp.o.d"
  "sim_tests"
  "sim_tests.pdb"
  "sim_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
