file(REMOVE_RECURSE
  "CMakeFiles/data_tests.dir/data/test_shipped_data.cpp.o"
  "CMakeFiles/data_tests.dir/data/test_shipped_data.cpp.o.d"
  "data_tests"
  "data_tests.pdb"
  "data_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
