file(REMOVE_RECURSE
  "CMakeFiles/kernels_tests.dir/kernels/test_blas.cpp.o"
  "CMakeFiles/kernels_tests.dir/kernels/test_blas.cpp.o.d"
  "CMakeFiles/kernels_tests.dir/kernels/test_dgemm_netbench.cpp.o"
  "CMakeFiles/kernels_tests.dir/kernels/test_dgemm_netbench.cpp.o.d"
  "CMakeFiles/kernels_tests.dir/kernels/test_fft.cpp.o"
  "CMakeFiles/kernels_tests.dir/kernels/test_fft.cpp.o.d"
  "CMakeFiles/kernels_tests.dir/kernels/test_gups.cpp.o"
  "CMakeFiles/kernels_tests.dir/kernels/test_gups.cpp.o.d"
  "CMakeFiles/kernels_tests.dir/kernels/test_hpl.cpp.o"
  "CMakeFiles/kernels_tests.dir/kernels/test_hpl.cpp.o.d"
  "CMakeFiles/kernels_tests.dir/kernels/test_hpl2d.cpp.o"
  "CMakeFiles/kernels_tests.dir/kernels/test_hpl2d.cpp.o.d"
  "CMakeFiles/kernels_tests.dir/kernels/test_hpl_mpisim.cpp.o"
  "CMakeFiles/kernels_tests.dir/kernels/test_hpl_mpisim.cpp.o.d"
  "CMakeFiles/kernels_tests.dir/kernels/test_iozone.cpp.o"
  "CMakeFiles/kernels_tests.dir/kernels/test_iozone.cpp.o.d"
  "CMakeFiles/kernels_tests.dir/kernels/test_matrix.cpp.o"
  "CMakeFiles/kernels_tests.dir/kernels/test_matrix.cpp.o.d"
  "CMakeFiles/kernels_tests.dir/kernels/test_ptrans.cpp.o"
  "CMakeFiles/kernels_tests.dir/kernels/test_ptrans.cpp.o.d"
  "CMakeFiles/kernels_tests.dir/kernels/test_stream.cpp.o"
  "CMakeFiles/kernels_tests.dir/kernels/test_stream.cpp.o.d"
  "kernels_tests"
  "kernels_tests.pdb"
  "kernels_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernels_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
