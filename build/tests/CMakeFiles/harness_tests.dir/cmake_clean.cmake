file(REMOVE_RECURSE
  "CMakeFiles/harness_tests.dir/harness/test_integration_paper.cpp.o"
  "CMakeFiles/harness_tests.dir/harness/test_integration_paper.cpp.o.d"
  "CMakeFiles/harness_tests.dir/harness/test_measurement_io.cpp.o"
  "CMakeFiles/harness_tests.dir/harness/test_measurement_io.cpp.o.d"
  "CMakeFiles/harness_tests.dir/harness/test_native.cpp.o"
  "CMakeFiles/harness_tests.dir/harness/test_native.cpp.o.d"
  "CMakeFiles/harness_tests.dir/harness/test_ranking.cpp.o"
  "CMakeFiles/harness_tests.dir/harness/test_ranking.cpp.o.d"
  "CMakeFiles/harness_tests.dir/harness/test_report.cpp.o"
  "CMakeFiles/harness_tests.dir/harness/test_report.cpp.o.d"
  "CMakeFiles/harness_tests.dir/harness/test_suite_runner.cpp.o"
  "CMakeFiles/harness_tests.dir/harness/test_suite_runner.cpp.o.d"
  "harness_tests"
  "harness_tests.pdb"
  "harness_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harness_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
