file(REMOVE_RECURSE
  "CMakeFiles/power_tests.dir/power/test_breakdown.cpp.o"
  "CMakeFiles/power_tests.dir/power/test_breakdown.cpp.o.d"
  "CMakeFiles/power_tests.dir/power/test_meter.cpp.o"
  "CMakeFiles/power_tests.dir/power/test_meter.cpp.o.d"
  "CMakeFiles/power_tests.dir/power/test_node_model.cpp.o"
  "CMakeFiles/power_tests.dir/power/test_node_model.cpp.o.d"
  "CMakeFiles/power_tests.dir/power/test_spec.cpp.o"
  "CMakeFiles/power_tests.dir/power/test_spec.cpp.o.d"
  "CMakeFiles/power_tests.dir/power/test_timeline.cpp.o"
  "CMakeFiles/power_tests.dir/power/test_timeline.cpp.o.d"
  "CMakeFiles/power_tests.dir/power/test_trace.cpp.o"
  "CMakeFiles/power_tests.dir/power/test_trace.cpp.o.d"
  "power_tests"
  "power_tests.pdb"
  "power_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
