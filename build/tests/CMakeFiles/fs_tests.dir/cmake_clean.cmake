file(REMOVE_RECURSE
  "CMakeFiles/fs_tests.dir/fs/test_disk.cpp.o"
  "CMakeFiles/fs_tests.dir/fs/test_disk.cpp.o.d"
  "CMakeFiles/fs_tests.dir/fs/test_filesystem.cpp.o"
  "CMakeFiles/fs_tests.dir/fs/test_filesystem.cpp.o.d"
  "CMakeFiles/fs_tests.dir/fs/test_filesystem_fuzz.cpp.o"
  "CMakeFiles/fs_tests.dir/fs/test_filesystem_fuzz.cpp.o.d"
  "CMakeFiles/fs_tests.dir/fs/test_page_cache.cpp.o"
  "CMakeFiles/fs_tests.dir/fs/test_page_cache.cpp.o.d"
  "fs_tests"
  "fs_tests.pdb"
  "fs_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fs_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
