# Empty compiler generated dependencies file for fs_tests.
# This may be replaced when dependencies are built.
