# Empty compiler generated dependencies file for mpisim_tests.
# This may be replaced when dependencies are built.
