file(REMOVE_RECURSE
  "CMakeFiles/mpisim_tests.dir/mpisim/test_collectives.cpp.o"
  "CMakeFiles/mpisim_tests.dir/mpisim/test_collectives.cpp.o.d"
  "CMakeFiles/mpisim_tests.dir/mpisim/test_groups.cpp.o"
  "CMakeFiles/mpisim_tests.dir/mpisim/test_groups.cpp.o.d"
  "CMakeFiles/mpisim_tests.dir/mpisim/test_runtime.cpp.o"
  "CMakeFiles/mpisim_tests.dir/mpisim/test_runtime.cpp.o.d"
  "mpisim_tests"
  "mpisim_tests.pdb"
  "mpisim_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpisim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
