file(REMOVE_RECURSE
  "CMakeFiles/stats_tests.dir/stats/test_bootstrap.cpp.o"
  "CMakeFiles/stats_tests.dir/stats/test_bootstrap.cpp.o.d"
  "CMakeFiles/stats_tests.dir/stats/test_correlation.cpp.o"
  "CMakeFiles/stats_tests.dir/stats/test_correlation.cpp.o.d"
  "CMakeFiles/stats_tests.dir/stats/test_descriptive.cpp.o"
  "CMakeFiles/stats_tests.dir/stats/test_descriptive.cpp.o.d"
  "CMakeFiles/stats_tests.dir/stats/test_means.cpp.o"
  "CMakeFiles/stats_tests.dir/stats/test_means.cpp.o.d"
  "CMakeFiles/stats_tests.dir/stats/test_regression.cpp.o"
  "CMakeFiles/stats_tests.dir/stats/test_regression.cpp.o.d"
  "stats_tests"
  "stats_tests.pdb"
  "stats_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
