file(REMOVE_RECURSE
  "CMakeFiles/util_tests.dir/util/test_config.cpp.o"
  "CMakeFiles/util_tests.dir/util/test_config.cpp.o.d"
  "CMakeFiles/util_tests.dir/util/test_error.cpp.o"
  "CMakeFiles/util_tests.dir/util/test_error.cpp.o.d"
  "CMakeFiles/util_tests.dir/util/test_format.cpp.o"
  "CMakeFiles/util_tests.dir/util/test_format.cpp.o.d"
  "CMakeFiles/util_tests.dir/util/test_log.cpp.o"
  "CMakeFiles/util_tests.dir/util/test_log.cpp.o.d"
  "CMakeFiles/util_tests.dir/util/test_rng.cpp.o"
  "CMakeFiles/util_tests.dir/util/test_rng.cpp.o.d"
  "CMakeFiles/util_tests.dir/util/test_sim_clock.cpp.o"
  "CMakeFiles/util_tests.dir/util/test_sim_clock.cpp.o.d"
  "CMakeFiles/util_tests.dir/util/test_table.cpp.o"
  "CMakeFiles/util_tests.dir/util/test_table.cpp.o.d"
  "CMakeFiles/util_tests.dir/util/test_units.cpp.o"
  "CMakeFiles/util_tests.dir/util/test_units.cpp.o.d"
  "util_tests"
  "util_tests.pdb"
  "util_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
