
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/test_config.cpp" "tests/CMakeFiles/util_tests.dir/util/test_config.cpp.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/test_config.cpp.o.d"
  "/root/repo/tests/util/test_error.cpp" "tests/CMakeFiles/util_tests.dir/util/test_error.cpp.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/test_error.cpp.o.d"
  "/root/repo/tests/util/test_format.cpp" "tests/CMakeFiles/util_tests.dir/util/test_format.cpp.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/test_format.cpp.o.d"
  "/root/repo/tests/util/test_log.cpp" "tests/CMakeFiles/util_tests.dir/util/test_log.cpp.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/test_log.cpp.o.d"
  "/root/repo/tests/util/test_rng.cpp" "tests/CMakeFiles/util_tests.dir/util/test_rng.cpp.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/test_rng.cpp.o.d"
  "/root/repo/tests/util/test_sim_clock.cpp" "tests/CMakeFiles/util_tests.dir/util/test_sim_clock.cpp.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/test_sim_clock.cpp.o.d"
  "/root/repo/tests/util/test_table.cpp" "tests/CMakeFiles/util_tests.dir/util/test_table.cpp.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/test_table.cpp.o.d"
  "/root/repo/tests/util/test_units.cpp" "tests/CMakeFiles/util_tests.dir/util/test_units.cpp.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/test_units.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/tgi_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tgi_core.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/tgi_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tgi_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mpisim/CMakeFiles/tgi_mpisim.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/tgi_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tgi_net.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/tgi_power.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/tgi_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tgi_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
