# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_tests[1]_include.cmake")
include("/root/repo/build/tests/stats_tests[1]_include.cmake")
include("/root/repo/build/tests/power_tests[1]_include.cmake")
include("/root/repo/build/tests/net_tests[1]_include.cmake")
include("/root/repo/build/tests/fs_tests[1]_include.cmake")
include("/root/repo/build/tests/mpisim_tests[1]_include.cmake")
include("/root/repo/build/tests/sim_tests[1]_include.cmake")
include("/root/repo/build/tests/kernels_tests[1]_include.cmake")
include("/root/repo/build/tests/core_tests[1]_include.cmake")
include("/root/repo/build/tests/harness_tests[1]_include.cmake")
include("/root/repo/build/tests/data_tests[1]_include.cmake")
