file(REMOVE_RECURSE
  "CMakeFiles/greener500.dir/greener500.cpp.o"
  "CMakeFiles/greener500.dir/greener500.cpp.o.d"
  "greener500"
  "greener500.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/greener500.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
