# Empty dependencies file for greener500.
# This may be replaced when dependencies are built.
