file(REMOVE_RECURSE
  "CMakeFiles/native_suite.dir/native_suite.cpp.o"
  "CMakeFiles/native_suite.dir/native_suite.cpp.o.d"
  "native_suite"
  "native_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/native_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
