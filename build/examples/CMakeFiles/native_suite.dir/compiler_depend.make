# Empty compiler generated dependencies file for native_suite.
# This may be replaced when dependencies are built.
