file(REMOVE_RECURSE
  "CMakeFiles/procurement.dir/procurement.cpp.o"
  "CMakeFiles/procurement.dir/procurement.cpp.o.d"
  "procurement"
  "procurement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/procurement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
