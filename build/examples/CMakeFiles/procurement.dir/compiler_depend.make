# Empty compiler generated dependencies file for procurement.
# This may be replaced when dependencies are built.
