file(REMOVE_RECURSE
  "CMakeFiles/center_wide.dir/center_wide.cpp.o"
  "CMakeFiles/center_wide.dir/center_wide.cpp.o.d"
  "center_wide"
  "center_wide.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/center_wide.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
