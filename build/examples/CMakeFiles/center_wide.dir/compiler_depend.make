# Empty compiler generated dependencies file for center_wide.
# This may be replaced when dependencies are built.
