# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tool_tgi_sweep "/root/repo/build/tools/tgi_sweep" "outdir=/root/repo/build/tools/sweep_out" "sweep=16,128" "meter=model")
set_tests_properties(tool_tgi_sweep PROPERTIES  FIXTURES_SETUP "sweep_output" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_tgi_calc "/root/repo/build/tools/tgi_calc" "system=/root/repo/build/tools/sweep_out/fire_128.csv" "reference=/root/repo/build/tools/sweep_out/reference_systemg.csv")
set_tests_properties(tool_tgi_calc PROPERTIES  DEPENDS "tool_tgi_sweep" FIXTURES_REQUIRED "sweep_output" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_tgi_rank "/root/repo/build/tools/tgi_rank" "reference=/root/repo/build/tools/sweep_out/reference_systemg.csv" "machines=/root/repo/build/tools/sweep_out/fire_16.csv,/root/repo/build/tools/sweep_out/fire_128.csv")
set_tests_properties(tool_tgi_rank PROPERTIES  FIXTURES_REQUIRED "sweep_output" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;29;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_tgi_native "/root/repo/build/tools/tgi_native" "out=/root/repo/build/tools/native_host.csv" "ranks=2" "hpl_n=64" "hpl_block=8" "stream_elements=100000" "iozone_mib=4")
set_tests_properties(tool_tgi_native PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;39;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_tgi_simulate "/root/repo/build/tools/tgi_simulate" "workload=/root/repo/workloads/cfd_timestep.conf" "cluster=/root/repo/clusters/fire.conf" "meter=model")
set_tests_properties(tool_tgi_simulate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;47;add_test;/root/repo/tools/CMakeLists.txt;0;")
