file(REMOVE_RECURSE
  "CMakeFiles/tgi_native.dir/tgi_native.cpp.o"
  "CMakeFiles/tgi_native.dir/tgi_native.cpp.o.d"
  "tgi_native"
  "tgi_native.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tgi_native.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
