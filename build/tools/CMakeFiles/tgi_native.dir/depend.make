# Empty dependencies file for tgi_native.
# This may be replaced when dependencies are built.
