# Empty compiler generated dependencies file for tgi_calc.
# This may be replaced when dependencies are built.
