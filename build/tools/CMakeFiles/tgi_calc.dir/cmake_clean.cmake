file(REMOVE_RECURSE
  "CMakeFiles/tgi_calc.dir/tgi_calc.cpp.o"
  "CMakeFiles/tgi_calc.dir/tgi_calc.cpp.o.d"
  "tgi_calc"
  "tgi_calc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tgi_calc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
