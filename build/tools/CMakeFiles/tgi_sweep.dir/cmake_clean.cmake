file(REMOVE_RECURSE
  "CMakeFiles/tgi_sweep.dir/tgi_sweep.cpp.o"
  "CMakeFiles/tgi_sweep.dir/tgi_sweep.cpp.o.d"
  "tgi_sweep"
  "tgi_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tgi_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
