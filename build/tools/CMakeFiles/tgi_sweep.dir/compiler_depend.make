# Empty compiler generated dependencies file for tgi_sweep.
# This may be replaced when dependencies are built.
