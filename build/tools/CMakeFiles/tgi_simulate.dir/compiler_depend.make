# Empty compiler generated dependencies file for tgi_simulate.
# This may be replaced when dependencies are built.
