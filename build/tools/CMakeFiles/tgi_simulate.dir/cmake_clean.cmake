file(REMOVE_RECURSE
  "CMakeFiles/tgi_simulate.dir/tgi_simulate.cpp.o"
  "CMakeFiles/tgi_simulate.dir/tgi_simulate.cpp.o.d"
  "tgi_simulate"
  "tgi_simulate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tgi_simulate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
