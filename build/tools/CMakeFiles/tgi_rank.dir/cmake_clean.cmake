file(REMOVE_RECURSE
  "CMakeFiles/tgi_rank.dir/tgi_rank.cpp.o"
  "CMakeFiles/tgi_rank.dir/tgi_rank.cpp.o.d"
  "tgi_rank"
  "tgi_rank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tgi_rank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
