# Empty compiler generated dependencies file for tgi_rank.
# This may be replaced when dependencies are built.
