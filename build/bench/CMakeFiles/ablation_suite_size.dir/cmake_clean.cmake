file(REMOVE_RECURSE
  "CMakeFiles/ablation_suite_size.dir/ablation_suite_size.cpp.o"
  "CMakeFiles/ablation_suite_size.dir/ablation_suite_size.cpp.o.d"
  "ablation_suite_size"
  "ablation_suite_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_suite_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
