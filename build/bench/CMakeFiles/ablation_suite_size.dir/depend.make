# Empty dependencies file for ablation_suite_size.
# This may be replaced when dependencies are built.
