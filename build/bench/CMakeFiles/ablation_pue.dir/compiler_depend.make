# Empty compiler generated dependencies file for ablation_pue.
# This may be replaced when dependencies are built.
