file(REMOVE_RECURSE
  "CMakeFiles/ablation_pue.dir/ablation_pue.cpp.o"
  "CMakeFiles/ablation_pue.dir/ablation_pue.cpp.o.d"
  "ablation_pue"
  "ablation_pue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
