file(REMOVE_RECURSE
  "CMakeFiles/report_extended_suite.dir/report_extended_suite.cpp.o"
  "CMakeFiles/report_extended_suite.dir/report_extended_suite.cpp.o.d"
  "report_extended_suite"
  "report_extended_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/report_extended_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
