# Empty dependencies file for report_extended_suite.
# This may be replaced when dependencies are built.
