# Empty compiler generated dependencies file for fig4_iozone_ee.
# This may be replaced when dependencies are built.
