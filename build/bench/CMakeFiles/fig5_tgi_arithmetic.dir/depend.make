# Empty dependencies file for fig5_tgi_arithmetic.
# This may be replaced when dependencies are built.
