file(REMOVE_RECURSE
  "CMakeFiles/fig5_tgi_arithmetic.dir/fig5_tgi_arithmetic.cpp.o"
  "CMakeFiles/fig5_tgi_arithmetic.dir/fig5_tgi_arithmetic.cpp.o.d"
  "fig5_tgi_arithmetic"
  "fig5_tgi_arithmetic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_tgi_arithmetic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
