file(REMOVE_RECURSE
  "CMakeFiles/ablation_mean_choice.dir/ablation_mean_choice.cpp.o"
  "CMakeFiles/ablation_mean_choice.dir/ablation_mean_choice.cpp.o.d"
  "ablation_mean_choice"
  "ablation_mean_choice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mean_choice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
