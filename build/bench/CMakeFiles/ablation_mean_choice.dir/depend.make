# Empty dependencies file for ablation_mean_choice.
# This may be replaced when dependencies are built.
