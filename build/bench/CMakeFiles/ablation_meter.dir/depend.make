# Empty dependencies file for ablation_meter.
# This may be replaced when dependencies are built.
