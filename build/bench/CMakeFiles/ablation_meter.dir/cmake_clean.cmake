file(REMOVE_RECURSE
  "CMakeFiles/ablation_meter.dir/ablation_meter.cpp.o"
  "CMakeFiles/ablation_meter.dir/ablation_meter.cpp.o.d"
  "ablation_meter"
  "ablation_meter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_meter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
