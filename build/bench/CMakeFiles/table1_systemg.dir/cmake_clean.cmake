file(REMOVE_RECURSE
  "CMakeFiles/table1_systemg.dir/table1_systemg.cpp.o"
  "CMakeFiles/table1_systemg.dir/table1_systemg.cpp.o.d"
  "table1_systemg"
  "table1_systemg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_systemg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
