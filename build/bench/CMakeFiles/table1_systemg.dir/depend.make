# Empty dependencies file for table1_systemg.
# This may be replaced when dependencies are built.
