# Empty compiler generated dependencies file for fig2_hpl_ee.
# This may be replaced when dependencies are built.
