file(REMOVE_RECURSE
  "CMakeFiles/fig2_hpl_ee.dir/fig2_hpl_ee.cpp.o"
  "CMakeFiles/fig2_hpl_ee.dir/fig2_hpl_ee.cpp.o.d"
  "fig2_hpl_ee"
  "fig2_hpl_ee.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_hpl_ee.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
