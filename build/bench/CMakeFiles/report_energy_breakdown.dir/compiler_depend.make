# Empty compiler generated dependencies file for report_energy_breakdown.
# This may be replaced when dependencies are built.
