file(REMOVE_RECURSE
  "CMakeFiles/report_energy_breakdown.dir/report_energy_breakdown.cpp.o"
  "CMakeFiles/report_energy_breakdown.dir/report_energy_breakdown.cpp.o.d"
  "report_energy_breakdown"
  "report_energy_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/report_energy_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
