# Empty compiler generated dependencies file for fig6_tgi_weighted.
# This may be replaced when dependencies are built.
