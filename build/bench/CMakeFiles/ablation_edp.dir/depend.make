# Empty dependencies file for ablation_edp.
# This may be replaced when dependencies are built.
