file(REMOVE_RECURSE
  "CMakeFiles/ablation_edp.dir/ablation_edp.cpp.o"
  "CMakeFiles/ablation_edp.dir/ablation_edp.cpp.o.d"
  "ablation_edp"
  "ablation_edp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_edp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
