# Empty compiler generated dependencies file for ablation_edp.
# This may be replaced when dependencies are built.
