# Empty compiler generated dependencies file for table2_pcc.
# This may be replaced when dependencies are built.
