file(REMOVE_RECURSE
  "CMakeFiles/table2_pcc.dir/table2_pcc.cpp.o"
  "CMakeFiles/table2_pcc.dir/table2_pcc.cpp.o.d"
  "table2_pcc"
  "table2_pcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_pcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
