file(REMOVE_RECURSE
  "CMakeFiles/fig3_stream_ee.dir/fig3_stream_ee.cpp.o"
  "CMakeFiles/fig3_stream_ee.dir/fig3_stream_ee.cpp.o.d"
  "fig3_stream_ee"
  "fig3_stream_ee.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_stream_ee.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
