# Empty compiler generated dependencies file for fig3_stream_ee.
# This may be replaced when dependencies are built.
