file(REMOVE_RECURSE
  "CMakeFiles/ablation_reference.dir/ablation_reference.cpp.o"
  "CMakeFiles/ablation_reference.dir/ablation_reference.cpp.o.d"
  "ablation_reference"
  "ablation_reference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_reference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
