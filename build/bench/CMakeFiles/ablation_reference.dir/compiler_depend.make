# Empty compiler generated dependencies file for ablation_reference.
# This may be replaced when dependencies are built.
