
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/report_weight_space.cpp" "bench/CMakeFiles/report_weight_space.dir/report_weight_space.cpp.o" "gcc" "bench/CMakeFiles/report_weight_space.dir/report_weight_space.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/tgi_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tgi_core.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/tgi_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tgi_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mpisim/CMakeFiles/tgi_mpisim.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/tgi_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tgi_net.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/tgi_power.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/tgi_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tgi_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
