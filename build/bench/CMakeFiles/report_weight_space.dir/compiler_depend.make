# Empty compiler generated dependencies file for report_weight_space.
# This may be replaced when dependencies are built.
