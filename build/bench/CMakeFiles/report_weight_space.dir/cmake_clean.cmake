file(REMOVE_RECURSE
  "CMakeFiles/report_weight_space.dir/report_weight_space.cpp.o"
  "CMakeFiles/report_weight_space.dir/report_weight_space.cpp.o.d"
  "report_weight_space"
  "report_weight_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/report_weight_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
