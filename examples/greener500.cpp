// "Greener500": rank a catalog of machines by TGI and compare against the
// Green500's FLOPS/W ordering, using the library's ranking module.
//
// The paper's motivation in one table: FLOPS/W only sees the CPU; TGI sees
// the whole system, so machines with weak memory or I/O subsystems fall in
// the TGI ranking even when their LINPACK efficiency looks great. The
// report's "rank disagreements" statistic counts exactly those cases.
#include <iostream>
#include <vector>

#include "harness/ranking.h"
#include "harness/suite.h"
#include "sim/catalog.h"

int main() {
  using namespace tgi;

  const std::vector<sim::ClusterSpec> machines{
      sim::fire_cluster(), sim::departmental_cluster(),
      sim::accelerator_heavy_cluster(), sim::low_power_cluster(),
      sim::commodity_gige_cluster()};

  power::ModelMeter ref_meter(util::seconds(0.5));
  const core::TgiCalculator calc(
      harness::reference_measurements(sim::system_g(), ref_meter));

  std::vector<harness::RankingSubmission> submissions;
  for (const auto& machine : machines) {
    power::ModelMeter meter(util::seconds(0.5));
    harness::SuiteRunner runner(machine, meter);
    submissions.push_back(
        {machine.name, runner.run_suite(machine.total_cores()).measurements});
  }

  for (const auto scheme :
       {core::WeightScheme::kArithmeticMean, core::WeightScheme::kTime}) {
    std::cout << "\n"
              << harness::render_ranking(
                     harness::rank_machines(calc, submissions, scheme));
  }

  std::cout <<
      "\nReading: the FLOPS/W column ranks the accelerator box first; TGI\n"
      "drops it to last because its starved I/O path and host memory make\n"
      "it the least *system-wide* efficient machine — the disagreement\n"
      "count is what the paper argues a green metric must expose.\n";
  return 0;
}
