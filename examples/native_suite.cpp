// Native suite: run the REAL benchmark kernels — the distributed LU solver
// on mpisim ranks, the threaded STREAM kernels on host memory, and the
// IOzone tests against the simulated filesystem — and aggregate them into
// a Green Index with a model-based power estimate.
//
// This is the path a user without a cluster takes: everything here
// executes actual computation on the local machine (with verified
// residuals and read-back checks), while power comes from the node model
// since laptops rarely have a plug meter attached.
#include <iostream>

#include "core/tgi.h"
#include "fs/filesystem.h"
#include "kernels/gups.h"
#include "kernels/hpl2d.h"
#include "kernels/iozone.h"
#include "kernels/ptrans.h"
#include "kernels/stream.h"
#include "power/node_model.h"
#include "sim/catalog.h"
#include "util/format.h"
#include "util/table.h"

namespace {

using namespace tgi;

/// Model-based power estimate for a host-local run: one Fire-class node at
/// the given utilization for the measured duration.
core::BenchmarkMeasurement estimate(const std::string& name,
                                    double performance,
                                    const std::string& unit,
                                    util::Seconds elapsed,
                                    power::ComponentUtilization util_profile) {
  const power::NodePowerModel node(sim::fire_cluster().node.power);
  core::BenchmarkMeasurement m;
  m.benchmark = name;
  m.performance = performance;
  m.metric_unit = unit;
  m.average_power = node.wall_power(util_profile);
  m.execution_time = elapsed;
  m.energy = m.average_power * m.execution_time;
  m.validate();
  return m;
}

}  // namespace

int main() {
  std::cout << "running the real kernels (host scale)...\n";

  // --- HPL: 2D block-cyclic LU over a 2×2 mpisim grid, residual-verified -
  kernels::Hpl2dConfig hpl_cfg;
  hpl_cfg.n = 512;
  hpl_cfg.block_size = 64;
  hpl_cfg.prows = 2;
  hpl_cfg.pcols = 2;
  hpl_cfg.seed = 2026;
  const kernels::HplResult hpl = kernels::run_hpl_mpisim_2d(hpl_cfg);
  std::cout << "HPL     n=512 2x2 grid: " << util::format(hpl.rate())
            << ", residual " << util::scientific(hpl.residual, 2)
            << (hpl.passed ? " (PASSED)" : " (FAILED)") << "\n";

  // --- Bonus HPCC-style kernels: GUPS and PTRANS --------------------------
  kernels::GupsConfig gups_cfg;
  gups_cfg.log2_table_words = 20;
  gups_cfg.updates = 1u << 22;
  const kernels::GupsResult gups = kernels::run_gups(gups_cfg);
  std::cout << "GUPS    2^20 table: " << util::fixed(gups.gups, 4)
            << " GUPS" << (gups.validated ? " (validated)" : " (CORRUPT)")
            << "\n";
  kernels::PtransConfig pt_cfg;
  pt_cfg.n = 256;
  pt_cfg.block_size = 32;
  const kernels::PtransResult pt = kernels::run_ptrans_mpisim(pt_cfg);
  std::cout << "PTRANS  n=256 2x2 grid: " << util::format(pt.exchange_rate())
            << " exchanged"
            << (pt.validated ? " (validated)" : " (CORRUPT)") << "\n";

  // --- STREAM: the four kernels on two host threads ----------------------
  kernels::StreamConfig stream_cfg;
  stream_cfg.array_elements = 2'000'000;
  stream_cfg.iterations = 3;
  stream_cfg.threads = 2;
  const kernels::StreamResult stream = kernels::run_stream(stream_cfg);
  std::cout << "STREAM  triad: " << util::format(stream.triad)
            << (stream.validated ? " (validated)" : " (CORRUPT)") << "\n";

  // --- IOzone: write/rewrite/read against the simulated filesystem -------
  fs::SimFilesystem filesystem;
  kernels::IozoneConfig io_cfg;
  io_cfg.file_size = util::mebibytes(64.0);
  io_cfg.record_size = util::kibibytes(128.0);
  const kernels::IozoneResult io = kernels::run_iozone(filesystem, io_cfg);
  std::cout << "IOzone  write: " << util::format(io.write)
            << (io.validated ? " (read-back verified)" : " (CORRUPT)")
            << "\n\n";

  if (!hpl.passed || !stream.validated || !io.validated) {
    std::cerr << "kernel verification failed; not aggregating\n";
    return 1;
  }

  // --- Aggregate into TGI -------------------------------------------------
  // System under test: this host's measurements with modeled power.
  const std::vector<core::BenchmarkMeasurement> system{
      estimate("HPL", util::in_megaflops(hpl.rate()), "MFLOPS", hpl.elapsed,
               {.cpu = 1.0, .memory = 0.4, .disk = 0.0, .network = 0.1}),
      estimate("STREAM", util::in_megabytes_per_sec(stream.triad), "MBPS",
               stream.elapsed,
               {.cpu = 0.6, .memory = 1.0, .disk = 0.0, .network = 0.0}),
      estimate("IOzone", util::in_megabytes_per_sec(io.write), "MBPS",
               io.elapsed,
               {.cpu = 0.2, .memory = 0.3, .disk = 1.0, .network = 0.0}),
  };

  // Reference: scale-down of the same node running the paper's reference
  // ratios — here we simply reuse the host results halved, standing in for
  // "last year's machine" to keep the example self-contained.
  std::vector<core::BenchmarkMeasurement> reference = system;
  for (auto& m : reference) m.performance *= 0.5;

  const core::TgiCalculator calc(reference);
  util::TextTable table({"scheme", "TGI"});
  for (const auto scheme :
       {core::WeightScheme::kArithmeticMean, core::WeightScheme::kTime,
        core::WeightScheme::kEnergy, core::WeightScheme::kPower}) {
    table.add_row({core::weight_scheme_name(scheme),
                   util::fixed(calc.compute(system, scheme).tgi, 4)});
  }
  std::cout << table;
  std::cout << "\n(every scheme reports 2.0: the system is exactly twice the\n"
               "reference's efficiency on every benchmark — a sanity anchor\n"
               "for the whole aggregation pipeline on real kernel output)\n";
  return 0;
}
