// Power-trace anatomy: what the plug meter actually sees during an HPL
// run — and why "average power" hides structure TGI's energy integral
// keeps.
//
// The HPL workload's trailing matrix shrinks as the factorization
// progresses, so the cluster's draw falls over the run; the meter samples
// that decay at 1 Hz exactly as the paper's Figure 1 instrument did. This
// example renders the trace as an ASCII profile and writes the raw meter
// log to CSV.
#include <iostream>

#include "harness/report.h"
#include "harness/suite.h"
#include "kernels/hpl_model.h"
#include "sim/catalog.h"
#include "util/format.h"

int main() {
  using namespace tgi;

  const sim::ClusterSpec fire = sim::fire_cluster();
  const sim::ExecutionSimulator simulator(fire);
  kernels::HplModelParams params;
  params.processes = 128;
  params.segments = 16;  // fine-grained so the power decay is visible
  const sim::Workload wl = kernels::make_hpl_workload(fire, params);
  const sim::SimulatedRun run = simulator.run(wl);

  power::WattsUpMeter meter;
  const power::MeterReading reading =
      meter.measure(run.timeline.as_source(), run.elapsed);

  std::cout << "HPL on Fire, 128 cores: " << util::format(run.elapsed)
            << " behind the meter\n";
  std::cout << "  average " << util::format(reading.average_power)
            << ", peak " << util::format(reading.trace.max_power())
            << ", floor " << util::format(reading.trace.min_power())
            << ", energy " << util::format(reading.energy) << "\n\n";

  // Downsample the trace into 60 buckets and sparkline it.
  const auto& samples = reading.trace.samples();
  std::vector<double> profile;
  const std::size_t buckets = 60;
  for (std::size_t b = 0; b < buckets; ++b) {
    const std::size_t i = b * (samples.size() - 1) / (buckets - 1);
    profile.push_back(samples[i].watts.value());
  }
  std::cout << "power over the run (60 samples):\n  "
            << harness::sparkline(profile) << "\n\n";

  std::cout << "per-phase breakdown (trailing matrix shrinking):\n";
  for (std::size_t s = 0; s < run.phases.size(); s += 4) {
    const auto& ph = run.phases[s];
    std::cout << "  " << ph.label << ": " << util::format(ph.duration)
              << ", cpu util " << util::percent(ph.utilization.cpu, 0)
              << "\n";
  }

  harness::write_trace_csv(reading.trace, "hpl_power_trace.csv");
  std::cout << "\nraw 1 Hz meter log written to hpl_power_trace.csv ("
            << reading.trace.size() << " samples)\n";
  return 0;
}
