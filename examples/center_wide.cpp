// Center-wide view: the paper's future-work extension made concrete.
//
// "We would like to extend TGI metric to give a center-wide view of the
// energy efficiency by including components such as cooling
// infrastructure." The same Fire cluster hosted in three facilities — a
// modern free-cooled hall (PUE 1.15), a typical machine room (PUE 1.6),
// and a legacy closet with CRAC units (PUE 2.2) — gets three different
// center-wide Green Indices from identical IT measurements.
#include <iostream>

#include "core/tgi.h"
#include "harness/suite.h"
#include "sim/catalog.h"
#include "util/format.h"
#include "util/table.h"

int main() {
  using namespace tgi;

  power::ModelMeter meter(util::seconds(0.5));
  harness::SuiteRunner runner(sim::fire_cluster(), meter);
  const auto suite = runner.run_suite(128).measurements;

  power::ModelMeter ref_meter(util::seconds(0.5));
  // Reference measured in its own facility at PUE 1.8 (SystemG's era).
  const core::TgiCalculator calc(
      harness::reference_measurements(sim::system_g(), ref_meter),
      core::EfficiencyMetric::kPerformancePerWatt,
      core::CoolingModel{1.8});

  struct Facility {
    const char* name;
    double pue;
  };
  const Facility facilities[] = {
      {"free-cooled hall", 1.15},
      {"typical machine room", 1.60},
      {"legacy CRAC closet", 2.20},
  };

  util::TextTable table({"facility", "PUE", "IT power", "facility power",
                         "center-wide TGI(AM)"});
  const auto& hpl = core::find_measurement(suite, "HPL");
  for (const auto& f : facilities) {
    const core::TgiResult r = calc.compute(
        suite, core::WeightScheme::kArithmeticMean, core::CoolingModel{f.pue});
    table.add_row({f.name, util::fixed(f.pue, 2),
                   util::format(hpl.average_power),
                   util::format(hpl.average_power * f.pue),
                   util::fixed(r.tgi, 4)});
  }
  std::cout << table;
  std::cout <<
      "\nReading: identical IT hardware, identical benchmarks — the\n"
      "center-wide index differs by the facilities' PUE ratio alone\n"
      "(free-cooled beats the CRAC closet by " << util::fixed(2.20 / 1.15, 2)
      << "x), which is exactly the lever the paper's extension exposes.\n";
  return 0;
}
