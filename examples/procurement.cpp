// Procurement scenario: pick the greener machine FOR YOUR WORKLOAD.
//
// The paper's advantage 1: "Each weighting factor can be assigned a value
// based on the specific needs of the user, e.g., assigning a higher
// weighting factor for the memory benchmark if we are evaluating a
// supercomputer to execute a memory-intensive application."
//
// We evaluate two candidate clusters for two shops — a dense-linear-algebra
// shop and a memory-streaming analytics shop — and show that custom TGI
// weights can rank the candidates differently than raw FLOPS/W would.
#include <iostream>

#include "core/tgi.h"
#include "harness/suite.h"
#include "sim/catalog.h"
#include "util/format.h"
#include "util/table.h"

namespace {

using namespace tgi;

std::vector<core::BenchmarkMeasurement> measure_full_scale(
    const sim::ClusterSpec& cluster) {
  power::ModelMeter meter(util::seconds(0.5));
  harness::SuiteRunner runner(cluster, meter);
  return runner.run_suite(cluster.total_cores()).measurements;
}

}  // namespace

int main() {
  const sim::ClusterSpec candidate_a = sim::accelerator_heavy_cluster();
  const sim::ClusterSpec candidate_b = sim::departmental_cluster();

  // Normalize both candidates against the same reference (SPEC-style).
  power::ModelMeter ref_meter(util::seconds(0.5));
  const auto reference =
      harness::reference_measurements(sim::system_g(), ref_meter);
  const core::TgiCalculator calc(reference);

  const auto suite_a = measure_full_scale(candidate_a);
  const auto suite_b = measure_full_scale(candidate_b);

  // Raw FLOPS/W view (what a Green500-style list would rank by).
  auto flops_per_watt = [](const std::vector<core::BenchmarkMeasurement>& s) {
    const auto& hpl = core::find_measurement(s, "HPL");
    return hpl.performance / hpl.average_power.value();
  };

  // Workload-specific weights over {HPL, STREAM, IOzone}, in suite order.
  const std::vector<double> dense_shop{0.7, 0.2, 0.1};
  const std::vector<double> etl_shop{0.05, 0.15, 0.8};

  util::TextTable table({"view", candidate_a.name, candidate_b.name,
                         "winner"});
  auto add = [&](const std::string& label, double a, double b) {
    table.add_row({label, util::fixed(a, 3), util::fixed(b, 3),
                   a > b ? candidate_a.name : candidate_b.name});
  };
  add("HPL MFLOPS/W only", flops_per_watt(suite_a), flops_per_watt(suite_b));
  add("TGI, arithmetic mean",
      calc.compute(suite_a, core::WeightScheme::kArithmeticMean).tgi,
      calc.compute(suite_b, core::WeightScheme::kArithmeticMean).tgi);
  add("TGI, dense-LA shop (W = .7/.2/.1)",
      calc.compute_custom(suite_a, dense_shop).tgi,
      calc.compute_custom(suite_b, dense_shop).tgi);
  add("TGI, ETL/data shop (W = .05/.15/.8)",
      calc.compute_custom(suite_a, etl_shop).tgi,
      calc.compute_custom(suite_b, etl_shop).tgi);
  std::cout << table;

  std::cout <<
      "\nReading: the FLOPS-heavy box wins the FLOPS-weighted views, but\n"
      "TGI with workload-appropriate weights prefers the balanced machine\n"
      "for the I/O-bound shop — a single-number ranking that still\n"
      "respects what the buyer actually runs (paper Section II, adv. 1).\n";
  return 0;
}
