// Quickstart: compute The Green Index of one cluster against a reference.
//
// This is the 60-second tour of the public API:
//   1. describe (or pick from the catalog) the machines,
//   2. run the benchmark suite behind a power meter,
//   3. hand the measurements to TgiCalculator.
//
// Build & run:  ./examples/quickstart
#include <iostream>

#include "core/tgi.h"
#include "harness/suite.h"
#include "sim/catalog.h"
#include "util/format.h"

int main() {
  using namespace tgi;

  // 1. Machines: the paper's system under test (Fire) and reference
  //    (SystemG), straight from the catalog.
  const sim::ClusterSpec fire = sim::fire_cluster();
  const sim::ClusterSpec reference = sim::system_g();

  // 2. A power meter. WattsUpMeter reproduces the paper's plug meter;
  //    swap in ModelMeter for a perfect instrument.
  power::WattsUpMeter meter;

  // Reference suite: HPL + STREAM at full scale, IOzone on a slice.
  power::WattsUpMeter reference_meter;
  const auto reference_suite =
      harness::reference_measurements(reference, reference_meter);

  // System-under-test suite at 128 cores.
  harness::SuiteRunner runner(fire, meter);
  const harness::SuitePoint point = runner.run_suite(128);

  // 3. TGI (Eqs. 2-4): EE -> REE -> weighted sum.
  const core::TgiCalculator calc(reference_suite);
  const core::TgiResult result = calc.compute(
      point.measurements, core::WeightScheme::kArithmeticMean);

  std::cout << "The Green Index of " << fire.name << " vs "
            << reference.name << " (arithmetic mean): "
            << util::fixed(result.tgi, 4) << "\n\n";
  std::cout << "benchmark   EE(sys)      EE(ref)      REE     weight\n";
  for (const auto& c : result.components) {
    std::cout << c.benchmark << (c.benchmark.size() < 8 ? "\t    " : "    ")
              << util::fixed(c.ee, 4) << "\t " << util::fixed(c.ref_ee, 4)
              << "\t      " << util::fixed(c.ree, 3) << "   "
              << util::fixed(c.weight, 3) << "\n";
  }
  std::cout << "\nleast-REE benchmark (the one TGI should track): "
            << result.least_ree().benchmark << "\n";

  // Bonus: the same measurements under the paper's other weight schemes.
  for (const auto scheme :
       {core::WeightScheme::kTime, core::WeightScheme::kEnergy,
        core::WeightScheme::kPower}) {
    std::cout << "TGI with " << core::weight_scheme_name(scheme) << ": "
              << util::fixed(calc.compute(point.measurements, scheme).tgi, 4)
              << "\n";
  }
  return 0;
}
